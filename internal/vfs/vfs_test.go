package vfs

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
)

func TestMemFileRoundTrip(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		f := NewMemFile("m")
		data := bytes.Repeat([]byte{7}, 100000)
		if err := f.WriteAt(p, data, 12345); err != nil {
			t.Error(err)
		}
		got := make([]byte, 100000)
		if err := f.ReadAt(p, got, 12345); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(data, got) {
			t.Error("round trip corrupted")
		}
		if f.Size() != 12345+100000 {
			t.Errorf("size = %d", f.Size())
		}
	})
	k.Run(0)
	if k.Now() != 0 {
		t.Fatalf("MemFile charged time: %v", k.Now())
	}
}

func TestMemFileReadsZerosFromHoles(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		f := NewMemFile("m")
		f.WriteAt(p, []byte{1}, 1<<20) // sparse write far out
		got := make([]byte, 16)
		got[3] = 0xFF
		f.ReadAt(p, got, 0)
		for i, b := range got {
			if b != 0 {
				t.Errorf("hole byte %d = %d, want 0", i, b)
			}
		}
	})
	k.Run(0)
}

func TestClosedFileRejected(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		f := NewMemFile("m")
		f.Close(p)
		if err := f.ReadAt(p, make([]byte, 1), 0); err != ErrClosed {
			t.Errorf("read after close: %v", err)
		}
		if err := f.WriteAt(p, []byte{1}, 0); err != ErrClosed {
			t.Errorf("write after close: %v", err)
		}
	})
	k.Run(0)
}

func TestNegativeOffsetRejected(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		f := NewMemFile("m")
		if err := f.ReadAt(p, make([]byte, 1), -1); err == nil {
			t.Error("negative read offset accepted")
		}
		if err := f.WriteAt(p, []byte{1}, -5); err == nil {
			t.Error("negative write offset accepted")
		}
	})
	k.Run(0)
}

func TestDeviceFileChargesTime(t *testing.T) {
	k := sim.New(1)
	ssd := disk.NewSSD(k, "ssd", disk.DefaultSSDConfig())
	var elapsed time.Duration
	k.Go("t", func(p *sim.Proc) {
		f := NewDeviceFile("d", ssd)
		data := make([]byte, 8192)
		f.WriteAt(p, data, 0)
		f.ReadAt(p, data, 0)
		elapsed = p.Now()
	})
	k.Run(0)
	if elapsed <= 0 {
		t.Fatal("device file should charge time")
	}
	if ssd.Reads != 1 || ssd.Writes != 1 {
		t.Fatalf("device counters %d/%d", ssd.Reads, ssd.Writes)
	}
}

func TestDeviceFilePreservesData(t *testing.T) {
	k := sim.New(1)
	hdd := disk.NewHDDArray(k, "hdd", disk.DefaultHDDArrayConfig(4))
	k.Go("t", func(p *sim.Proc) {
		f := NewDeviceFile("d", hdd)
		data := []byte("hello raid zero")
		f.WriteAt(p, data, 777777)
		got := make([]byte, len(data))
		f.ReadAt(p, got, 777777)
		if !bytes.Equal(data, got) {
			t.Error("data corrupted on device file")
		}
	})
	k.Run(0)
}

// Property: any sequence of writes followed by reads behaves like a flat
// byte array.
func TestSparseMatchesFlatProperty(t *testing.T) {
	type op struct {
		Off  uint32
		Data []byte
	}
	f := func(ops []op) bool {
		s := newSparse()
		flat := make([]byte, 1<<20)
		for _, o := range ops {
			off := int64(o.Off % (1 << 19))
			if len(o.Data) > 4096 {
				o.Data = o.Data[:4096]
			}
			s.writeAt(o.Data, off)
			copy(flat[off:], o.Data)
		}
		got := make([]byte, 1<<19)
		s.readAt(got, 0)
		return bytes.Equal(got, flat[:1<<19])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseCrossChunkBoundary(t *testing.T) {
	s := newSparse()
	data := bytes.Repeat([]byte{0xCD}, 3*chunkSize)
	s.writeAt(data, chunkSize/2)
	got := make([]byte, len(data))
	s.readAt(got, chunkSize/2)
	if !bytes.Equal(data, got) {
		t.Fatal("cross-chunk round trip corrupted")
	}
}

// Chunk-boundary edge cases at the File level: writes that end exactly
// on a 64 KiB chunk boundary, start one byte before it, or straddle it
// by one byte must round-trip, and the holes they leave on either side
// must read as zeros.
func TestChunkBoundaryReadsAndWrites(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		f := NewMemFile("edges")
		cases := []struct {
			name string
			off  int64
			n    int
		}{
			{"ends-on-boundary", chunkSize - 100, 100},
			{"starts-on-boundary", 3 * chunkSize, 100},
			{"one-byte-before", 5*chunkSize - 1, 1},
			{"one-byte-after", 7 * chunkSize, 1},
			{"straddles-by-one", 9*chunkSize - 1, 2},
			{"spans-three-chunks", 11*chunkSize - 7, 2*chunkSize + 14},
		}
		for i, c := range cases {
			data := bytes.Repeat([]byte{byte(0x10 + i)}, c.n)
			if err := f.WriteAt(p, data, c.off); err != nil {
				t.Fatalf("%s: write: %v", c.name, err)
			}
			got := make([]byte, c.n)
			if err := f.ReadAt(p, got, c.off); err != nil {
				t.Fatalf("%s: read: %v", c.name, err)
			}
			if !bytes.Equal(data, got) {
				t.Errorf("%s: round trip corrupted", c.name)
			}
			// The byte on each side of the write is still a hole (no
			// earlier case wrote adjacent to it) and must read zero.
			edge := make([]byte, 1)
			if c.off > 0 {
				f.ReadAt(p, edge, c.off-1)
				if edge[0] != 0 {
					t.Errorf("%s: byte before write = %#x, want 0", c.name, edge[0])
				}
			}
			f.ReadAt(p, edge, c.off+int64(c.n))
			if edge[0] != 0 {
				t.Errorf("%s: byte after write = %#x, want 0", c.name, edge[0])
			}
		}
	})
	k.Run(0)
}

// A read spanning written chunk / hole chunk / written chunk must stitch
// data and zero-fill together correctly.
func TestReadAcrossHoleBetweenChunks(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		f := NewMemFile("holes")
		left := bytes.Repeat([]byte{0xAA}, chunkSize)
		right := bytes.Repeat([]byte{0xBB}, chunkSize)
		f.WriteAt(p, left, 0)            // chunk 0
		f.WriteAt(p, right, 2*chunkSize) // chunk 2; chunk 1 is a hole
		got := make([]byte, 3*chunkSize) // spans all three
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:chunkSize], left) {
			t.Error("left chunk corrupted")
		}
		if !bytes.Equal(got[chunkSize:2*chunkSize], make([]byte, chunkSize)) {
			t.Error("hole chunk not zero-filled")
		}
		if !bytes.Equal(got[2*chunkSize:], right) {
			t.Error("right chunk corrupted")
		}
		if f.Size() != 3*chunkSize {
			t.Errorf("size = %d, want %d", f.Size(), 3*chunkSize)
		}
	})
	k.Run(0)
}

// A read buffer larger than the leftover of a stale chunk's prior write
// must not see the prior write's bytes beyond the hole: zero-fill is
// per missing chunk, data per present chunk, regardless of read offset
// alignment.
func TestUnalignedReadOverPartialChunks(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		f := NewMemFile("partial")
		// Write only the middle third of chunk 1.
		third := chunkSize / 3
		data := bytes.Repeat([]byte{0xEE}, third)
		f.WriteAt(p, data, chunkSize+int64(third))
		// Read the whole of chunks 0..2 at an unaligned offset.
		got := make([]byte, 2*chunkSize+99)
		if err := f.ReadAt(p, got, 51); err != nil {
			t.Fatal(err)
		}
		for i, b := range got {
			off := int64(i) + 51
			inWrite := off >= chunkSize+int64(third) && off < chunkSize+2*int64(third)
			want := byte(0)
			if inWrite {
				want = 0xEE
			}
			if b != want {
				t.Fatalf("byte at %d = %#x, want %#x", off, b, want)
			}
		}
	})
	k.Run(0)
}
