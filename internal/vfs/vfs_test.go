package vfs

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
)

func TestMemFileRoundTrip(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		f := NewMemFile("m")
		data := bytes.Repeat([]byte{7}, 100000)
		if err := f.WriteAt(p, data, 12345); err != nil {
			t.Error(err)
		}
		got := make([]byte, 100000)
		if err := f.ReadAt(p, got, 12345); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(data, got) {
			t.Error("round trip corrupted")
		}
		if f.Size() != 12345+100000 {
			t.Errorf("size = %d", f.Size())
		}
	})
	k.Run(0)
	if k.Now() != 0 {
		t.Fatalf("MemFile charged time: %v", k.Now())
	}
}

func TestMemFileReadsZerosFromHoles(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		f := NewMemFile("m")
		f.WriteAt(p, []byte{1}, 1<<20) // sparse write far out
		got := make([]byte, 16)
		got[3] = 0xFF
		f.ReadAt(p, got, 0)
		for i, b := range got {
			if b != 0 {
				t.Errorf("hole byte %d = %d, want 0", i, b)
			}
		}
	})
	k.Run(0)
}

func TestClosedFileRejected(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		f := NewMemFile("m")
		f.Close(p)
		if err := f.ReadAt(p, make([]byte, 1), 0); err != ErrClosed {
			t.Errorf("read after close: %v", err)
		}
		if err := f.WriteAt(p, []byte{1}, 0); err != ErrClosed {
			t.Errorf("write after close: %v", err)
		}
	})
	k.Run(0)
}

func TestNegativeOffsetRejected(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		f := NewMemFile("m")
		if err := f.ReadAt(p, make([]byte, 1), -1); err == nil {
			t.Error("negative read offset accepted")
		}
		if err := f.WriteAt(p, []byte{1}, -5); err == nil {
			t.Error("negative write offset accepted")
		}
	})
	k.Run(0)
}

func TestDeviceFileChargesTime(t *testing.T) {
	k := sim.New(1)
	ssd := disk.NewSSD(k, "ssd", disk.DefaultSSDConfig())
	var elapsed time.Duration
	k.Go("t", func(p *sim.Proc) {
		f := NewDeviceFile("d", ssd)
		data := make([]byte, 8192)
		f.WriteAt(p, data, 0)
		f.ReadAt(p, data, 0)
		elapsed = p.Now()
	})
	k.Run(0)
	if elapsed <= 0 {
		t.Fatal("device file should charge time")
	}
	if ssd.Reads != 1 || ssd.Writes != 1 {
		t.Fatalf("device counters %d/%d", ssd.Reads, ssd.Writes)
	}
}

func TestDeviceFilePreservesData(t *testing.T) {
	k := sim.New(1)
	hdd := disk.NewHDDArray(k, "hdd", disk.DefaultHDDArrayConfig(4))
	k.Go("t", func(p *sim.Proc) {
		f := NewDeviceFile("d", hdd)
		data := []byte("hello raid zero")
		f.WriteAt(p, data, 777777)
		got := make([]byte, len(data))
		f.ReadAt(p, got, 777777)
		if !bytes.Equal(data, got) {
			t.Error("data corrupted on device file")
		}
	})
	k.Run(0)
}

// Property: any sequence of writes followed by reads behaves like a flat
// byte array.
func TestSparseMatchesFlatProperty(t *testing.T) {
	type op struct {
		Off  uint32
		Data []byte
	}
	f := func(ops []op) bool {
		s := newSparse()
		flat := make([]byte, 1<<20)
		for _, o := range ops {
			off := int64(o.Off % (1 << 19))
			if len(o.Data) > 4096 {
				o.Data = o.Data[:4096]
			}
			s.writeAt(o.Data, off)
			copy(flat[off:], o.Data)
		}
		got := make([]byte, 1<<19)
		s.readAt(got, 0)
		return bytes.Equal(got, flat[:1<<19])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseCrossChunkBoundary(t *testing.T) {
	s := newSparse()
	data := bytes.Repeat([]byte{0xCD}, 3*chunkSize)
	s.writeAt(data, chunkSize/2)
	got := make([]byte, len(data))
	s.readAt(got, chunkSize/2)
	if !bytes.Equal(data, got) {
		t.Fatal("cross-chunk round trip corrupted")
	}
}
