// Package vfs defines the file abstraction every storage consumer in the
// engine goes through — data files, the write-ahead log, TempDB, the
// buffer-pool extension, and the semantic cache all read and write
// vfs.File. Binding a consumer to an HDD-backed, SSD-backed, local-RAM,
// or remote-memory file is how the evaluated designs of Table 5 are
// assembled without touching engine code, which is exactly the paper's
// argument for the lightweight file API.
package vfs

import (
	"fmt"

	"remotedb/internal/fault"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
)

// File is a time-charged random-access file in simulation space.
type File interface {
	// Name identifies the file in stats output.
	Name() string
	// ReadAt reads len(b) bytes at off, charging device time to p.
	ReadAt(p *sim.Proc, b []byte, off int64) error
	// WriteAt writes b at off, growing the file if needed.
	WriteAt(p *sim.Proc, b []byte, off int64) error
	// Size returns the current file size.
	Size() int64
	// Close releases resources; the file must not be used afterwards.
	Close(p *sim.Proc) error
}

// ErrClosed is returned on access to a closed file. It wraps
// fault.ErrClosed so errors.Is classification works through the facade.
var ErrClosed = fmt.Errorf("vfs: file is closed (%w)", fault.ErrClosed)

// ErrUnavailable is returned when a file's backing store is gone (a
// remote-memory file whose lease was revoked). Consumers treat it as a
// signal to fall back, never as corruption — the paper's best-effort
// fault-tolerance contract. It wraps fault.ErrUnavailable.
var ErrUnavailable = fmt.Errorf("vfs: backing store unavailable (%w)", fault.ErrUnavailable)

// ErrCorrupt is returned when a file's stored bytes failed integrity
// verification (checksum or generation mismatch) and no healthy replica
// could serve the access. The read buffer contents are unspecified and
// must not be used; consumers fall back as for ErrUnavailable. It wraps
// fault.ErrCorrupt.
var ErrCorrupt = fmt.Errorf("vfs: data failed integrity verification (%w)", fault.ErrCorrupt)

// chunkSize is the allocation granularity of the sparse in-memory store.
const chunkSize = 64 << 10

// sparse is a chunked byte store so multi-gigabyte simulated files only
// allocate the regions actually touched.
type sparse struct {
	chunks map[int64][]byte
	size   int64
}

func newSparse() *sparse { return &sparse{chunks: make(map[int64][]byte)} }

func (s *sparse) readAt(b []byte, off int64) {
	for len(b) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := chunkSize - co
		if n > int64(len(b)) {
			n = int64(len(b))
		}
		if c, ok := s.chunks[ci]; ok {
			copy(b[:n], c[co:co+n])
		} else {
			for i := int64(0); i < n; i++ {
				b[i] = 0
			}
		}
		b = b[n:]
		off += n
	}
}

func (s *sparse) writeAt(b []byte, off int64) {
	if end := off + int64(len(b)); end > s.size {
		s.size = end
	}
	for len(b) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := chunkSize - co
		if n > int64(len(b)) {
			n = int64(len(b))
		}
		c, ok := s.chunks[ci]
		if !ok {
			c = make([]byte, chunkSize)
			s.chunks[ci] = c
		}
		copy(c[co:co+n], b[:n])
		b = b[n:]
		off += n
	}
}

// MemFile is a local-RAM file: contents in memory, no time charged. It is
// the storage of the Local Memory design and of in-memory serialization
// scratch space.
type MemFile struct {
	name   string
	data   *sparse
	closed bool
}

// NewMemFile creates an empty local-RAM file.
func NewMemFile(name string) *MemFile {
	return &MemFile{name: name, data: newSparse()}
}

// Name returns the file name.
func (f *MemFile) Name() string { return f.name }

// ReadAt copies bytes out; no time is charged.
func (f *MemFile) ReadAt(p *sim.Proc, b []byte, off int64) error {
	if f.closed {
		return ErrClosed
	}
	if off < 0 {
		return fmt.Errorf("vfs: negative offset %d", off)
	}
	f.data.readAt(b, off)
	return nil
}

// WriteAt copies bytes in; no time is charged.
func (f *MemFile) WriteAt(p *sim.Proc, b []byte, off int64) error {
	if f.closed {
		return ErrClosed
	}
	if off < 0 {
		return fmt.Errorf("vfs: negative offset %d", off)
	}
	f.data.writeAt(b, off)
	return nil
}

// Size returns the high-water mark.
func (f *MemFile) Size() int64 { return f.data.size }

// Close marks the file closed.
func (f *MemFile) Close(p *sim.Proc) error {
	f.closed = true
	return nil
}

// DeviceFile stores bytes in memory but charges a disk model for every
// access: this is a file on the HDD array or the SSD.
type DeviceFile struct {
	name   string
	dev    disk.Device
	data   *sparse
	closed bool

	Reads, Writes      int64
	BytesRead, Written int64
}

// NewDeviceFile creates a file on dev.
func NewDeviceFile(name string, dev disk.Device) *DeviceFile {
	return &DeviceFile{name: name, dev: dev, data: newSparse()}
}

// Name returns the file name.
func (f *DeviceFile) Name() string { return f.name }

// Device returns the backing device model.
func (f *DeviceFile) Device() disk.Device { return f.dev }

// ReadAt charges the device and copies bytes out.
func (f *DeviceFile) ReadAt(p *sim.Proc, b []byte, off int64) error {
	if f.closed {
		return ErrClosed
	}
	if off < 0 {
		return fmt.Errorf("vfs: negative offset %d", off)
	}
	f.dev.Read(p, off, int64(len(b)))
	f.data.readAt(b, off)
	f.Reads++
	f.BytesRead += int64(len(b))
	return nil
}

// WriteAt charges the device and copies bytes in.
func (f *DeviceFile) WriteAt(p *sim.Proc, b []byte, off int64) error {
	if f.closed {
		return ErrClosed
	}
	if off < 0 {
		return fmt.Errorf("vfs: negative offset %d", off)
	}
	f.dev.Write(p, off, int64(len(b)))
	f.data.writeAt(b, off)
	f.Writes++
	f.Written += int64(len(b))
	return nil
}

// Size returns the high-water mark.
func (f *DeviceFile) Size() int64 { return f.data.size }

// Close marks the file closed.
func (f *DeviceFile) Close(p *sim.Proc) error {
	f.closed = true
	return nil
}

// Every concrete file implements the interface the engine consumes.
var (
	_ File = (*MemFile)(nil)
	_ File = (*DeviceFile)(nil)
)
