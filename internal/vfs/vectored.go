// Vectored (scatter-gather) file I/O. A Vec names one element of a
// multi-extent transfer; files that can batch the elements into fewer
// charged operations implement VectorFile, and ReadVec/WriteVec give
// every consumer a single call site that uses the batched path when the
// file has one and degrades to a per-element loop when it does not.
package vfs

import (
	"fmt"

	"remotedb/internal/sim"
)

// Vec is one element of a vectored transfer: len(Buf) bytes at Off.
type Vec struct {
	Off int64
	Buf []byte
}

// VectorFile is implemented by files with a native scatter-gather path —
// the remote-memory file batches elements into doorbell-coalesced RDMA
// transfers, device files merge adjacent extents into one seek. On
// error some elements may already have transferred; callers that need
// to localize a failure fall back to per-element ReadAt/WriteAt. Write
// vectors must not contain overlapping elements.
type VectorFile interface {
	File
	ReadAtV(p *sim.Proc, vecs []Vec) error
	WriteAtV(p *sim.Proc, vecs []Vec) error
}

// ReadVec reads every element of vecs from f, through the native
// scatter-gather path when f has one.
func ReadVec(p *sim.Proc, f File, vecs []Vec) error {
	if vf, ok := f.(VectorFile); ok {
		return vf.ReadAtV(p, vecs)
	}
	for _, v := range vecs {
		if err := f.ReadAt(p, v.Buf, v.Off); err != nil {
			return err
		}
	}
	return nil
}

// WriteVec writes every element of vecs to f, through the native
// scatter-gather path when f has one.
func WriteVec(p *sim.Proc, f File, vecs []Vec) error {
	if vf, ok := f.(VectorFile); ok {
		return vf.WriteAtV(p, vecs)
	}
	for _, v := range vecs {
		if err := f.WriteAt(p, v.Buf, v.Off); err != nil {
			return err
		}
	}
	return nil
}

// ReadAtV copies every element out; no time is charged either way, so
// this exists only to satisfy VectorFile.
func (f *MemFile) ReadAtV(p *sim.Proc, vecs []Vec) error {
	for _, v := range vecs {
		if err := f.ReadAt(p, v.Buf, v.Off); err != nil {
			return err
		}
	}
	return nil
}

// WriteAtV copies every element in; no time is charged.
func (f *MemFile) WriteAtV(p *sim.Proc, vecs []Vec) error {
	for _, v := range vecs {
		if err := f.WriteAt(p, v.Buf, v.Off); err != nil {
			return err
		}
	}
	return nil
}

// ReadAtV charges the device once per contiguous run of elements — the
// elevator merge a real block layer performs on a sorted batch — and
// copies each element out.
func (f *DeviceFile) ReadAtV(p *sim.Proc, vecs []Vec) error {
	return f.deviceVec(p, vecs, false)
}

// WriteAtV charges the device once per contiguous run and copies each
// element in.
func (f *DeviceFile) WriteAtV(p *sim.Proc, vecs []Vec) error {
	return f.deviceVec(p, vecs, true)
}

func (f *DeviceFile) deviceVec(p *sim.Proc, vecs []Vec, write bool) error {
	if f.closed {
		return ErrClosed
	}
	for _, v := range vecs {
		if v.Off < 0 {
			return fmt.Errorf("vfs: negative offset %d", v.Off)
		}
	}
	for i := 0; i < len(vecs); {
		run := int64(len(vecs[i].Buf))
		j := i + 1
		for j < len(vecs) && vecs[j].Off == vecs[i].Off+run {
			run += int64(len(vecs[j].Buf))
			j++
		}
		if write {
			f.dev.Write(p, vecs[i].Off, run)
		} else {
			f.dev.Read(p, vecs[i].Off, run)
		}
		for k := i; k < j; k++ {
			if write {
				f.data.writeAt(vecs[k].Buf, vecs[k].Off)
				f.Writes++
				f.Written += int64(len(vecs[k].Buf))
			} else {
				f.data.readAt(vecs[k].Buf, vecs[k].Off)
				f.Reads++
				f.BytesRead += int64(len(vecs[k].Buf))
			}
		}
		i = j
	}
	return nil
}

var (
	_ VectorFile = (*MemFile)(nil)
	_ VectorFile = (*DeviceFile)(nil)
)
