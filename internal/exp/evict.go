// The evict experiment A/Bs the buffer pool's eviction policies under a
// skewed working set: the legacy clock sweep vs the cost-aware GDSF
// heap. A Zipf-distributed access stream over a data set ~8x the pool,
// with a fraction of accesses dirtying pages, measures hit rate, disk
// faults, synchronous write-back volume, and elapsed (stall) time per
// policy. GDSF keeps the frequently-hit pages and prefers sacrificing
// cheap-to-refetch clean pages, so it should win on both hit rate and
// stall time.
package exp

import (
	"fmt"
	"math/rand"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/page"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// EvictParams sizes the policy A/B.
type EvictParams struct {
	Frames   int     // pool size
	Pages    int     // data set size (pages)
	Accesses int     // Zipf-distributed Get()s per policy
	Zipf     float64 // skew exponent (> 1)
	DirtyPct int     // percent of accesses that dirty the page
}

// DefaultEvictParams runs 20k accesses at skew 1.2 over a data set 8x
// the 256-frame pool, 10% of them writes.
func DefaultEvictParams() EvictParams {
	return EvictParams{
		Frames:   256,
		Pages:    2048,
		Accesses: 20000,
		Zipf:     1.2,
		DirtyPct: 10,
	}
}

// EvictPoint is one policy's run.
type EvictPoint struct {
	Policy         string
	Elapsed        time.Duration
	HitRate        float64
	Hits           int64
	DiskReads      int64
	EvictDirty     int64
	WriteBackBytes int64 // synchronous eviction write-back volume
}

// RAPoint is one readahead mode's pass over the burst-scan stream.
type RAPoint struct {
	Mode       string
	Window     int   // window offered at the end of the run
	Prefetched int64 // pages installed by readahead
	Hits       int64 // prefetched pages later demanded
	Wasted     int64 // prefetched pages evicted unused
	WasteRatio float64
	Elapsed    time.Duration
}

// EvictResult is the A/B comparison.
type EvictResult struct {
	Clock, GDSF EvictPoint
	HitDelta    float64 // GDSF - clock hit rate, in points
	Speedup     float64 // clock elapsed / GDSF elapsed

	// Readahead adaptation lane: the same stream of mostly-short
	// sequential bursts through a fixed prefetch window and through the
	// hit/waste-adaptive one. Short bursts make a fixed window overshoot
	// past the burst end, so the adaptive window must shrink and the
	// waste ratio must drop.
	FixedRA    RAPoint
	AdaptiveRA RAPoint
	WasteDrop  float64 // fixed - adaptive waste ratio, in points
}

// RunEvict drives the same deterministic access stream through a
// clock-swept pool and a GDSF pool and compares them.
func RunEvict(seed int64, prm EvictParams) (EvictResult, error) {
	var res EvictResult
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		clock, err := evictRun(p, seed, prm, buffer.PolicyClock)
		if err != nil {
			return err
		}
		gdsf, err := evictRun(p, seed, prm, buffer.PolicyGDSF)
		if err != nil {
			return err
		}
		res.Clock = clock
		res.GDSF = gdsf
		res.HitDelta = (gdsf.HitRate - clock.HitRate) * 100
		if gdsf.Elapsed > 0 {
			res.Speedup = float64(clock.Elapsed) / float64(gdsf.Elapsed)
		}
		if res.FixedRA, err = readaheadRun(p, seed, prm, false); err != nil {
			return err
		}
		if res.AdaptiveRA, err = readaheadRun(p, seed, prm, true); err != nil {
			return err
		}
		res.WasteDrop = (res.FixedRA.WasteRatio - res.AdaptiveRA.WasteRatio) * 100
		return nil
	})
	return res, err
}

func evictRun(p *sim.Proc, seed int64, prm EvictParams, pol buffer.Policy) (EvictPoint, error) {
	pt := EvictPoint{Policy: "clock"}
	if pol == buffer.PolicyGDSF {
		pt.Policy = "gdsf"
	}
	scfg := cluster.DefaultConfig()
	scfg.MemoryBytes = 256 << 20
	s := cluster.NewServer(p.Kernel(), "evict-"+pt.Policy, scfg)
	cfg := buffer.DefaultConfig(prm.Frames)
	cfg.Policy = pol
	// No lazy writer: dirty pages must be written back synchronously at
	// eviction, so the policies' dirty-victim choices show up as stall
	// time and write-back volume.
	cfg.WriterPeriod = 0
	bp, err := buffer.New(p, s, vfs.NewDeviceFile("data", s.HDD), cfg)
	if err != nil {
		return pt, err
	}
	defer bp.StopWriter()
	for i := 0; i < prm.Pages; i++ {
		h, _, err := bp.Allocate(p, page.TypeHeap)
		if err != nil {
			return pt, err
		}
		h.MarkDirty(uint64(i + 1))
		h.Release()
	}
	if err := bp.FlushAll(p); err != nil {
		return pt, err
	}
	bp.Stats = buffer.Stats{}

	// The same deterministic Zipf stream for both policies.
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, prm.Zipf, 1, uint64(prm.Pages-1))
	t0 := p.Now()
	for i := 0; i < prm.Accesses; i++ {
		no := zipf.Uint64() + 1 // pages are numbered from 1
		h, err := bp.Get(p, no)
		if err != nil {
			return pt, err
		}
		if prm.DirtyPct > 0 && i%(100/prm.DirtyPct) == 0 {
			h.MarkDirty(uint64(prm.Pages + i))
		}
		h.Release()
	}
	pt.Elapsed = p.Now() - t0
	st := bp.Stats
	pt.Hits = st.Hits
	pt.DiskReads = st.DiskReads
	pt.EvictDirty = st.EvictDirty
	pt.WriteBackBytes = st.EvictWriteBytes
	if total := st.Hits + st.ExtHits + st.DiskReads; total > 0 {
		pt.HitRate = float64(st.Hits) / float64(total)
	}
	return pt, nil
}

// readaheadRun drives a stream of sequential bursts — mostly short
// range probes, occasionally a long scan leg — through a pool with the
// given readahead mode, issuing window prefetches the way the B-tree
// iterator does (engage after the first page, slow-start up to the
// pool's offered window, re-arm past the previous window). A fixed
// window keeps prefetching the full depth past every burst's end; the
// adaptive window must observe those pages dying unused and shrink.
func readaheadRun(p *sim.Proc, seed int64, prm EvictParams, adaptive bool) (RAPoint, error) {
	pt := RAPoint{Mode: "fixed"}
	if adaptive {
		pt.Mode = "adaptive"
	}
	scfg := cluster.DefaultConfig()
	scfg.MemoryBytes = 256 << 20
	s := cluster.NewServer(p.Kernel(), "ra-"+pt.Mode, scfg)
	cfg := buffer.DefaultConfig(prm.Frames)
	cfg.WriterPeriod = 0
	cfg.AdaptiveReadahead = adaptive
	bp, err := buffer.New(p, s, vfs.NewDeviceFile("radata", s.HDD), cfg)
	if err != nil {
		return pt, err
	}
	defer bp.StopWriter()
	for i := 0; i < prm.Pages; i++ {
		h, _, err := bp.Allocate(p, page.TypeHeap)
		if err != nil {
			return pt, err
		}
		h.MarkDirty(uint64(i + 1))
		h.Release()
	}
	if err := bp.FlushAll(p); err != nil {
		return pt, err
	}
	bp.Stats = buffer.Stats{}

	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	t0 := p.Now()
	for visits := 0; visits < prm.Accesses; {
		start := uint64(rng.Intn(prm.Pages-50)) + 1
		length := 2 + rng.Intn(3) // short probe: 2-4 pages
		if rng.Intn(10) == 0 {
			length = 24 + rng.Intn(25) // long scan leg
		}
		raNext := uint64(0)
		for j := 0; j < length; j++ {
			no := start + uint64(j)
			if ra := bp.ReadaheadPages(); ra > 0 && j >= 1 && no >= raNext {
				win := j + 1
				if win > ra {
					win = ra
				}
				bp.ReadAheadWindow(p, no, win)
				raNext = no + uint64(win)
			}
			h, err := bp.Get(p, no)
			if err != nil {
				return pt, err
			}
			h.Release()
			visits++
		}
	}
	pt.Elapsed = p.Now() - t0
	st := bp.Stats
	pt.Window = bp.ReadaheadPages()
	pt.Prefetched = st.ReadAheadPages
	pt.Hits = st.ReadAheadHits
	pt.Wasted = st.ReadAheadWasted
	if settled := pt.Hits + pt.Wasted; settled > 0 {
		pt.WasteRatio = float64(pt.Wasted) / float64(settled)
	}
	return pt, nil
}

// String renders one readahead row.
func (pt RAPoint) String() string {
	return fmt.Sprintf("%-8s window=%d  prefetched=%d  hit=%d  wasted=%d  waste=%.1f%%  elapsed=%v",
		pt.Mode, pt.Window, pt.Prefetched, pt.Hits, pt.Wasted,
		pt.WasteRatio*100, pt.Elapsed.Round(time.Microsecond))
}

// String renders one policy row.
func (pt EvictPoint) String() string {
	return fmt.Sprintf("%-6s hit=%.1f%%  faults=%d  dirty-evicts=%d  writeback=%dKiB  elapsed=%v",
		pt.Policy, pt.HitRate*100, pt.DiskReads, pt.EvictDirty,
		pt.WriteBackBytes>>10, pt.Elapsed.Round(time.Microsecond))
}
