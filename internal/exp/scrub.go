// The "scrub" experiment: silent-corruption defense under load. Two
// storms on the Custom design with K-way replicated, checksummed
// striping:
//
//  1. a corruption storm — bit flips, torn writes, and stale-replica
//     resurrections poked directly into donor memory while RangeScan
//     runs — must be fully detected (no silently wrong bytes reach the
//     engine) and repaired from a healthy replica, with zero
//     engine-visible errors;
//  2. a revocation storm — every primary stripe lease of the BPExt
//     revoked at once — must be absorbed by replica failover with zero
//     salvage invocations and zero engine-visible errors: replication
//     turns stripe loss from a degraded window into a non-event.
package exp

import (
	"time"

	"remotedb/internal/sim"
	"remotedb/internal/workload"
)

// ScrubParams tunes RunScrub.
type ScrubParams struct {
	Rows       int
	Clients    int
	Window     time.Duration // measurement window per phase
	ScrubEvery time.Duration // scrubber cadence
	Flips      int           // bit-flip injections (corruption storm)
	Tears      int           // torn-write injections
	Stales     int           // stale-replica resurrection pairs
}

// DefaultScrubParams keeps the experiment fast while still landing
// corruption on both replicas of many distinct blocks.
func DefaultScrubParams() ScrubParams {
	return ScrubParams{
		Rows:       60000,
		Clients:    16,
		Window:     250 * time.Millisecond,
		ScrubEvery: 5 * time.Millisecond,
		Flips:      12,
		Tears:      6,
		Stales:     4,
	}
}

// ScrubResult reports both storms.
type ScrubResult struct {
	// Corruption storm (K=2 + scrubber).
	Injected     int   // corruption events injected
	Detected     int64 // frames that failed verification (read path + scrub)
	Repaired     int64 // frames rewritten from a healthy copy
	Failovers    int64 // reads served by a non-primary replica
	ScrubSweeps  int64 // full stripe sweeps completed
	ScrubChecked int64 // frames the scrubber verified clean
	Poisoned     int   // blocks left with no good copy (must be 0)
	Errors       int64 // engine-visible query errors (must be 0)
	Throughput   float64
	MeanLat      time.Duration
	P95Lat       time.Duration

	// Revocation storm (K=2).
	StormStripes   int   // primary leases revoked at once
	ReplicaRepairs int64 // replicas rebuilt on fresh donors
	Salvages       int64 // salvage invocations (must be 0)
	LostStripes    int64 // whole-stripe losses (must be 0)
	StormErrors    int64 // engine-visible query errors (must be 0)
	StormHealthy   bool  // file fully re-replicated at the end
}

// scrubBedConfig is the shared geometry: Custom design, two-way
// replication (which implies integrity framing), small 1 MiB stripes so
// the BPExt spans 16+ stripes, and a background scrubber.
func scrubBedConfig(seed int64, prm ScrubParams) BedConfig {
	cfg := DefaultBedConfig(DesignCustom)
	cfg.Seed = seed
	// A pool smaller than the table forces real BPExt traffic, so the
	// storms land on frames the engine actually reads back.
	cfg.LocalMemBytes = 8 << 20
	cfg.MRBytes = 1 << 20
	cfg.BPExtBytes = 16 << 20
	cfg.TempBytes = 4 << 20
	cfg.Replication = 2
	cfg.ScrubEvery = prm.ScrubEvery
	// Renew aggressively so replicas of cold (never-written) stripes
	// also notice revocation within the measurement window.
	cfg.LeaseTTL = 200 * time.Millisecond
	return cfg
}

// RunScrub runs both storms and returns the combined result.
func RunScrub(seed int64, prm ScrubParams) (*ScrubResult, error) {
	out := &ScrubResult{}
	if err := runCorruptionStorm(seed, prm, out); err != nil {
		return nil, err
	}
	if err := runRevocationStorm(seed, prm, out); err != nil {
		return nil, err
	}
	return out, nil
}

// runCorruptionStorm injects bit flips, torn writes, and stale-replica
// resurrections into the BPExt's stored frames — on both replicas —
// while RangeScan (with updates) runs over it.
func runCorruptionStorm(seed int64, prm ScrubParams, out *ScrubResult) error {
	return RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		bed, err := NewBed(p, scrubBedConfig(seed, prm))
		if err != nil {
			return err
		}
		wcfg := workload.DefaultRangeScan()
		wcfg.Rows = prm.Rows
		wcfg.Clients = prm.Clients
		wcfg.UpdateFraction = 0.05
		w, err := workload.NewRangeScan(p, bed.Eng, wcfg)
		if err != nil {
			return err
		}
		// Warm until the BPExt holds real pages to corrupt.
		res := w.Run(p, 100*time.Millisecond, prm.Window)
		out.Errors += res.Errors

		// The storm: spread events over the first half of the window,
		// alternating replicas so both the read path (replica 0) and
		// the scrubber (replica 1, which ordinary reads never touch)
		// must detect. Stale pairs snapshot early and resurrect late,
		// leaving time for overwrites in between.
		now := p.Now()
		var events []FaultEvent
		step := prm.Window / time.Duration(2*(prm.Flips+prm.Tears+2))
		at := now + step
		for i := 0; i < prm.Flips; i++ {
			events = append(events, FaultEvent{
				At: at, Kind: FaultBitFlip, Name: "bpext", N: i * 5, Replica: i % 2,
			})
			at += step
		}
		for i := 0; i < prm.Tears; i++ {
			events = append(events, FaultEvent{
				At: at, Kind: FaultTornWrite, Name: "bpext", N: i*7 + 2, Replica: i % 2,
			})
			at += step
		}
		for i := 0; i < prm.Stales; i++ {
			events = append(events, FaultEvent{
				At: now + step/2, Kind: FaultStaleSnapshot, Name: "bpext", N: i * 11, Replica: i % 2,
			})
		}
		events = append(events, FaultEvent{
			At: now + prm.Window/2, Kind: FaultStaleRestore, Name: "bpext",
		})
		out.Injected = prm.Flips + prm.Tears + prm.Stales
		bed.InjectFaults(events)

		res = w.Run(p, 0, prm.Window)
		out.Errors += res.Errors

		// Settle: let the scrubber finish sweeping every stripe.
		p.Sleep(2 * prm.Window)

		res = w.Run(p, 0, prm.Window)
		out.Errors += res.Errors
		out.Throughput = res.Throughput()
		out.MeanLat = res.Latency.Mean()
		out.P95Lat = res.Latency.P95()

		out.Detected = bed.FS.Corruptions.N
		out.Repaired = bed.FS.Repairs.N
		out.Failovers = bed.FS.Failovers.N
		out.ScrubSweeps = bed.FS.ScrubSweeps
		out.ScrubChecked = bed.FS.ScrubChecked.N
		if f, ok := bed.FS.Lookup("bpext"); ok {
			for g := 0; g < f.Blocks(); g++ {
				if f.BlockPoisoned(g) {
					out.Poisoned++
				}
			}
		}
		bed.Close(p)
		return nil
	})
}

// runRevocationStorm revokes every primary stripe lease of the BPExt at
// once. With K=2 every read fails over to the surviving replica
// immediately — no degraded window, no salvage — and the revoked
// replicas rebuild in the background once a fresh donor replenishes the
// pool.
func runRevocationStorm(seed int64, prm ScrubParams, out *ScrubResult) error {
	return RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		cfg := scrubBedConfig(seed, prm)
		bed, err := NewBed(p, cfg)
		if err != nil {
			return err
		}
		wcfg := workload.DefaultRangeScan()
		wcfg.Rows = prm.Rows
		wcfg.Clients = prm.Clients
		wcfg.UpdateFraction = 0.05
		w, err := workload.NewRangeScan(p, bed.Eng, wcfg)
		if err != nil {
			return err
		}
		res := w.Run(p, 100*time.Millisecond, prm.Window)
		out.StormErrors += res.Errors

		f, ok := bed.FS.Lookup("bpext")
		if !ok {
			bed.Close(p)
			return nil
		}
		out.StormStripes = len(f.LeaseIDs())

		// Revoke every primary at once; replenish the donor pool shortly
		// after so the background replica rebuilds have regions to lease
		// (the revoked MRs are destroyed).
		now := p.Now()
		bed.InjectFaults([]FaultEvent{
			{At: now + 20*time.Millisecond, Kind: FaultRevokeFile, Name: "bpext"},
			{At: now + 30*time.Millisecond, Kind: FaultReplenish, N: out.StormStripes + 2},
		})
		res = w.Run(p, 0, prm.Window)
		out.StormErrors += res.Errors

		// Settle: scrubber re-kicks any rebuild that raced the
		// replenishment.
		p.Sleep(2 * prm.Window)
		res = w.Run(p, 0, prm.Window)
		out.StormErrors += res.Errors

		out.ReplicaRepairs = bed.FS.ReplicaRepairs
		out.Salvages = bed.FS.Salvages
		out.LostStripes = bed.FS.LostStripes
		out.StormHealthy = !f.Degraded() && !f.Unavailable()
		bed.Close(p)
		return nil
	})
}
