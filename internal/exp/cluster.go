// Cluster-scale broker benchmark: hundreds of simulated database
// servers lease remote memory from a sharded broker, renew through
// batched per-holder heartbeats, and ride out a diurnal reclamation
// wave that claws back a quarter of the live leases. Phase A sweeps the
// holder count to show aggregate random-read throughput scaling until
// the donor NICs saturate; phase B measures latency inflation and
// engine-visible errors through the reclamation storm (a revoked
// stripe is never an error: the holder falls back to its local SSD,
// exactly as a buffer-pool extension consumer would fall back to base
// data, while the FS restripes in the background).

package exp

import (
	"errors"
	"fmt"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/core"
	"remotedb/internal/fault"
	"remotedb/internal/metrics"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// ClusterParams sizes the cluster benchmark.
type ClusterParams struct {
	Shards      int   // broker shards
	Donors      int   // memory servers donating MRs
	HolderSteps []int // phase A sweep; the last entry is phase B's size
	MRBytes     int   // memory-region size
	DonorMRs    int   // MRs pinned per donor
	FileBytes   int64 // remote file per holder

	LeaseTTL       time.Duration
	HeartbeatEvery time.Duration
	ExpireEvery    time.Duration
	Measure        time.Duration // per phase-A point and per phase-B window

	StormPulses int     // reclamation pulses in the storm window
	StormFrac   float64 // fraction of live leases shed per pulse
	Quota       int64   // per-tenant byte quota
}

// DefaultClusterParams: 160 holders + 48 donors (208 participants) on a
// 4-shard broker, three tenants with 2:1:1 weights.
func DefaultClusterParams() ClusterParams {
	return ClusterParams{
		Shards:         4,
		Donors:         48,
		HolderSteps:    []int{40, 80, 160},
		MRBytes:        128 << 10,
		DonorMRs:       40,
		FileBytes:      512 << 10,
		LeaseTTL:       120 * time.Millisecond,
		HeartbeatEvery: 40 * time.Millisecond,
		ExpireEvery:    60 * time.Millisecond,
		Measure:        250 * time.Millisecond,
		StormPulses:    3,
		StormFrac:      0.10,
		Quota:          64 << 20,
	}
}

// clusterTenants assigns holders round-robin to three tenants whose
// weights make "oltp" twice as entitled under scarcity.
var clusterTenants = []string{"oltp", "olap", "batch"}

// ScalePoint is one x-position of the phase A holder sweep.
type ScalePoint struct {
	Holders      int
	Participants int
	BytesPerSec  float64
	MeanLat      time.Duration
}

// ClusterResult is everything the cluster benchmark reports.
type ClusterResult struct {
	Shards int
	Donors int
	Scale  []ScalePoint

	// Phase B: the reclamation storm at the largest holder count.
	Holders      int
	Participants int
	LiveBefore   int // live leases when the storm hit
	Shed         int // leases revoked by the wave
	ShedFrac     float64

	HealthyLat   time.Duration
	StormLat     time.Duration
	RecoveredLat time.Duration
	Inflation    float64 // StormLat / HealthyLat
	HealthyBPS   float64
	StormBPS     float64

	Fallbacks int64 // reads served from local SSD during repair
	Errors    int64 // engine-visible errors (must be zero)

	Heartbeats  int64 // batched renewal rounds across all holders
	HBBatchMean float64
	HBBatches   int64
	Grants      int64
	Renewals    int64
	Expirations int64
	Revocations int64
	ActivePeak  int64
	FreeMRs     int64

	Tenants map[string]broker.TenantStats
}

// clusterHolder is one simulated database server: its remote file, the
// local SSD file it falls back to while a stripe is being restriped,
// and the FS whose heartbeat loop renews its whole lease cohort.
type clusterHolder struct {
	fs    *core.FS
	f     *core.File
	local vfs.File
}

// buildClusterBed assembles the sharded broker, donors, and holders
// inside the running simulation.
func buildClusterBed(p *sim.Proc, prm ClusterParams, holders int) (*broker.Cluster, []*clusterHolder, error) {
	k := p.Kernel()
	store := metastore.New(k, 10*time.Microsecond)
	bcfg := broker.DefaultConfig()
	bcfg.LeaseTTL = prm.LeaseTTL
	bcfg.Quotas = map[string]int64{}
	bcfg.Weights = map[string]float64{"oltp": 2, "olap": 1, "batch": 1}
	for _, t := range clusterTenants {
		bcfg.Quotas[t] = prm.Quota
	}
	c := broker.NewCluster(p, store, prm.Shards, bcfg)
	if prm.ExpireEvery > 0 {
		k.Go("cluster-broker-expire", func(ep *sim.Proc) { c.ExpireLoop(ep, prm.ExpireEvery) })
	}
	for i := 0; i < prm.Donors; i++ {
		m := cluster.NewServer(k, fmt.Sprintf("mem%d", i+1), serverConfig(4))
		if _, err := c.AddProxy(p, m, prm.MRBytes, prm.DonorMRs); err != nil {
			return nil, nil, err
		}
	}
	var hs []*clusterHolder
	for i := 0; i < holders; i++ {
		db := cluster.NewServer(k, fmt.Sprintf("db%d", i+1), serverConfig(4))
		client := rmem.NewClient(p, db, rmem.DefaultClientConfig())
		fsCfg := core.DefaultConfig()
		fsCfg.Tenant = clusterTenants[i%len(clusterTenants)]
		fsCfg.HeartbeatEvery = prm.HeartbeatEvery
		fs := core.NewFS(p, c, client, fsCfg)
		f, err := fs.Create(p, "work", prm.FileBytes)
		if err != nil {
			return nil, nil, fmt.Errorf("holder %d: %w", i, err)
		}
		if err := f.OpenConn(p); err != nil {
			return nil, nil, err
		}
		hs = append(hs, &clusterHolder{
			fs:    fs,
			f:     f,
			local: vfs.NewDeviceFile("base", db.SSD),
		})
	}
	return c, hs, nil
}

// driveHolders runs one closed-loop 8K random reader per holder until
// end. Reads that fail because a stripe is mid-reclamation fall back to
// the holder's local SSD (counted, never an error); any other failure
// is an engine-visible error. Latencies land in the histogram selected
// by window(now).
func driveHolders(p *sim.Proc, hs []*clusterHolder, end time.Duration,
	window func(time.Duration) int, hists []*metrics.Histogram, bytes []int64,
	fallbacks, errs *int64) []int64 {
	k := p.Kernel()
	wg := sim.NewWaitGroup(k)
	wg.Add(len(hs))
	span := hs[0].f.Size()
	for _, h := range hs {
		h := h
		k.Go("holder-drive", func(tp *sim.Proc) {
			defer wg.Done()
			buf := make([]byte, 8192)
			for tp.Now() < end {
				off := tp.Rand().Int63n(span/8192) * 8192
				t0 := tp.Now()
				if err := h.f.ReadAt(tp, buf, off); err != nil {
					if !reclaimable(err) {
						*errs++
						continue
					}
					// The stripe is being reclaimed or restriped:
					// serve the page from base data on the local SSD,
					// like a buffer-pool extension miss.
					if err := h.local.ReadAt(tp, buf, off); err != nil {
						*errs++
						continue
					}
					*fallbacks++
				}
				w := window(tp.Now())
				if w >= 0 && w < len(hists) {
					hists[w].Observe(tp.Now() - t0)
					bytes[w] += int64(len(buf))
				}
			}
		})
	}
	wg.Wait(p)
	return bytes
}

// reclaimable reports whether a read error is part of the reclamation
// protocol (revoked, restriping, transiently retryable) rather than an
// engine-visible failure.
func reclaimable(err error) bool {
	return fault.Retryable(err) ||
		errors.Is(err, fault.ErrRevoked) ||
		errors.Is(err, fault.ErrUnavailable)
}

// RunCluster runs the cluster-scale broker benchmark.
func RunCluster(seed int64, prm ClusterParams) (*ClusterResult, error) {
	res := &ClusterResult{Shards: prm.Shards, Donors: prm.Donors}

	// Phase A: holder-count sweep, aggregate random-read throughput.
	for _, n := range prm.HolderSteps {
		n := n
		pt := ScalePoint{Holders: n, Participants: n + prm.Donors}
		err := RunInSim(seed, time.Hour, func(p *sim.Proc) error {
			c, hs, err := buildClusterBed(p, prm, n)
			if err != nil {
				return err
			}
			hist := metrics.NewHistogram()
			bytes := []int64{0}
			var fallbacks, errs int64
			start := p.Now()
			driveHolders(p, hs, start+prm.Measure,
				func(time.Duration) int { return 0 },
				[]*metrics.Histogram{hist}, bytes, &fallbacks, &errs)
			if errs > 0 {
				return fmt.Errorf("%d engine-visible errors at %d holders", errs, n)
			}
			pt.BytesPerSec = float64(bytes[0]) / prm.Measure.Seconds()
			pt.MeanLat = hist.Mean()
			for _, h := range hs {
				h.fs.CloseAll(p)
			}
			c.StopExpireLoop()
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.Scale = append(res.Scale, pt)
	}

	// Phase B: the diurnal reclamation wave at the largest holder count.
	holders := prm.HolderSteps[len(prm.HolderSteps)-1]
	res.Holders = holders
	res.Participants = holders + prm.Donors
	err := RunInSim(seed, time.Hour, func(p *sim.Proc) error {
		c, hs, err := buildClusterBed(p, prm, holders)
		if err != nil {
			return err
		}
		k := p.Kernel()
		// Three windows: healthy, storm, recovered.
		t0 := p.Now()
		t1 := t0 + prm.Measure
		t2 := t1 + prm.Measure
		t3 := t2 + prm.Measure
		window := func(now time.Duration) int {
			switch {
			case now < t1:
				return 0
			case now < t2:
				return 1
			default:
				return 2
			}
		}
		hists := []*metrics.Histogram{metrics.NewHistogram(), metrics.NewHistogram(), metrics.NewHistogram()}
		bytes := []int64{0, 0, 0}
		var fallbacks, errs int64

		// The wave: pulses spread over the storm window, each shedding
		// StormFrac of the leases live at storm start, oldest-first
		// round-robin over tenants.
		k.Go("reclamation-wave", func(sp *sim.Proc) {
			sp.Sleep(t1 - sp.Now())
			res.LiveBefore = c.ActiveLeases()
			per := int(float64(res.LiveBefore) * prm.StormFrac)
			gap := prm.Measure / time.Duration(prm.StormPulses+1)
			for i := 0; i < prm.StormPulses; i++ {
				res.Shed += c.ShedFair(per)
				sp.Sleep(gap)
			}
		})

		driveHolders(p, hs, t3, window, hists, bytes, &fallbacks, &errs)

		res.HealthyLat = hists[0].Mean()
		res.StormLat = hists[1].Mean()
		res.RecoveredLat = hists[2].Mean()
		if res.HealthyLat > 0 {
			res.Inflation = float64(res.StormLat) / float64(res.HealthyLat)
		}
		res.HealthyBPS = float64(bytes[0]) / prm.Measure.Seconds()
		res.StormBPS = float64(bytes[1]) / prm.Measure.Seconds()
		res.Fallbacks = fallbacks
		res.Errors = errs
		if res.LiveBefore > 0 {
			res.ShedFrac = float64(res.Shed) / float64(res.LiveBefore)
		}
		for _, h := range hs {
			res.Heartbeats += h.fs.Heartbeats
		}
		hb := c.HeartbeatBatch()
		res.HBBatchMean = hb.Mean()
		res.HBBatches = hb.N
		res.Grants = c.Grants()
		res.Renewals = c.Renewals()
		res.Expirations = c.Expirations()
		res.Revocations = c.Revocations()
		res.ActivePeak = c.ActiveGauge().Peak
		res.FreeMRs = int64(c.FreeMRs())
		res.Tenants = c.TenantStats()
		for _, h := range hs {
			h.fs.CloseAll(p)
		}
		c.StopExpireLoop()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
