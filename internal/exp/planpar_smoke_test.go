package exp

import "testing"

func TestPlanCacheSmoke(t *testing.T) {
	prm := DefaultPlanCacheParams()
	prm.Reps = 40
	if testing.Short() {
		prm.Reps = 15
	}
	res, err := RunPlanCache(1, prm)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cached=%v uncached=%v cold=%v warm=%v hits=%d misses=%d speedup=%.2fx",
		res.CachedTime, res.UncachedTime, res.ColdLat, res.WarmLat, res.Hits, res.Misses, res.Speedup)
	if res.Hits == 0 {
		t.Error("plan cache saw no hits on a repeated query stream")
	}
	if res.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one shape in the stream)", res.Misses)
	}
	if res.Speedup <= 1 {
		t.Errorf("plan cache speedup = %.2fx, want > 1x", res.Speedup)
	}
}

func TestParScanSmoke(t *testing.T) {
	prm := DefaultParScanParams()
	prm.SF = 0.02
	prm.DOPs = []int{1, 4}
	if testing.Short() {
		prm.DOPs = []int{1, 2}
	}
	pts, err := RunParScan(1, prm)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		t.Logf("DOP %2d: %v (%.0f rows/s, %.2fx)", pt.DOP, pt.Elapsed, pt.RowsPerSec, pt.Speedup)
	}
	last := pts[len(pts)-1]
	if last.Speedup <= 1 {
		t.Errorf("parallel scan at DOP %d is %.2fx of serial, want > 1x", last.DOP, last.Speedup)
	}
}
