// Package exp is the experiment harness: it assembles the test beds for
// the six evaluated designs of Table 5 and contains one runner per table
// and figure of the paper's evaluation (Sections 6 and Appendix B). The
// bench targets in the repository root call these runners.
package exp

import (
	"fmt"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/core"
	"remotedb/internal/engine"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/page"
	"remotedb/internal/fault"
	"remotedb/internal/hw/nic"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// Design is one evaluated alternative (Table 5).
type Design int

// The six designs of Table 5.
const (
	DesignHDD Design = iota
	DesignHDDSSD
	DesignSMB
	DesignSMBDirect
	DesignCustom
	DesignLocalMemory
)

// AllDesigns lists the designs in the paper's presentation order.
var AllDesigns = []Design{
	DesignHDD, DesignHDDSSD, DesignSMB, DesignSMBDirect, DesignCustom, DesignLocalMemory,
}

// RemoteDesigns are the three designs that use remote memory.
var RemoteDesigns = []Design{DesignSMB, DesignSMBDirect, DesignCustom}

func (d Design) String() string {
	switch d {
	case DesignHDD:
		return "HDD"
	case DesignHDDSSD:
		return "HDD+SSD"
	case DesignSMB:
		return "SMB+RamDrive"
	case DesignSMBDirect:
		return "SMBDirect+RamDrive"
	case DesignCustom:
		return "Custom"
	case DesignLocalMemory:
		return "Local Memory"
	}
	return "unknown"
}

// Remote reports whether the design uses remote memory.
func (d Design) Remote() bool {
	return d == DesignSMB || d == DesignSMBDirect || d == DesignCustom
}

func (d Design) protocol() nic.Protocol {
	switch d {
	case DesignSMB:
		return nic.ProtoSMB
	case DesignSMBDirect:
		return nic.ProtoSMBDirect
	default:
		return nic.ProtoRDMA
	}
}

// BedConfig sizes one test bed. All byte quantities are the paper's
// scaled 1000x down (Table 4).
type BedConfig struct {
	Design        Design
	Spindles      int   // HDD RAID width (paper default: 20)
	LocalMemBytes int64 // DB server buffer pool memory
	BPExtBytes    int64 // extension size; 0 disables
	TempBytes     int64 // TempDB capacity (remote designs lease this much)
	RemoteServers int   // memory servers contributing MRs
	MRBytes       int   // memory-region size
	Seed          int64
	OLTP          bool // analytics workloads disable the SSD BPExt (Section 5.3)

	// GrantBytes overrides the default per-query memory grant.
	GrantBytes int64

	// LeaseTTL overrides the broker's lease TTL (0 keeps the default).
	LeaseTTL time.Duration
	// ExpireEvery starts the broker's expiry sweep at this cadence
	// (0 leaves the sweep off, as before).
	ExpireEvery time.Duration
	// Retry overrides the FS backoff policy for transient broker and
	// metastore failures (zero value keeps core's default).
	Retry fault.RetryPolicy
	// NoRecover disables re-lease/restripe recovery, restoring the
	// original fail-to-disk behavior (the ablation baseline).
	NoRecover bool

	// Replication stripes every remote file over K replicas per stripe
	// on distinct donors (0 or 1 keeps single-copy striping). K > 1
	// implies Integrity.
	Replication int
	// Integrity enables checksummed block framing (CRC-32C + generation
	// stamp) on every remote file.
	Integrity bool
	// ScrubEvery starts each remote file's background scrubber at this
	// cadence (0 leaves scrubbing off). Requires Integrity.
	ScrubEvery time.Duration

	// Eviction selects the buffer pool's eviction policy (GDSF by
	// default; buffer.PolicyClock for A/B runs).
	Eviction buffer.Policy
	// NoBatchedIO disables the buffer pool's vectored paths (batched
	// writeback, grouped extension puts, scan readahead).
	NoBatchedIO bool
	// Readahead overrides the scan readahead window in pages (0 keeps
	// the buffer default).
	Readahead int

	// Pushdown lets the planner place pushable scans at the donors and
	// spilled hash joins probe remote hash tables.
	Pushdown bool
	// DonorPrice scales donor CPU in the placement cost model.
	DonorPrice float64

	// BrokerShards shards the broker's lease space across this many
	// replicas (0 or 1 keeps a single shard).
	BrokerShards int
	// HeartbeatEvery sets the FS's batched lease-heartbeat cadence
	// (0 = half the lease TTL).
	HeartbeatEvery time.Duration
	// TenantQuotas caps each tenant's leased bytes at the broker.
	TenantQuotas map[string]int64
	// Tenant tags the bed FS's lease requests for admission accounting.
	Tenant string

	// DeadlineBudget bounds every remote transfer: an op still in
	// flight past the budget is abandoned with fault.ErrSlow and the
	// access falls back to the local tier. Also stamped on each query
	// as its per-query budget (0 = none).
	DeadlineBudget time.Duration
	// Hedging races a slow primary replica read against the next
	// replica once it exceeds the adaptive p95 threshold. Needs
	// Replication > 1 to have a replica to hedge to.
	Hedging bool
	// HedgeAfter fixes the hedge trigger (0 = adaptive per-donor p95).
	HedgeAfter time.Duration
	// HedgeRateCap bounds hedges as a fraction of tolerant reads
	// (0 = core's default of 0.1).
	HedgeRateCap float64
	// HealthChecks scores donors (latency/error EWMAs), deprioritizes
	// browned-out donors for reads and new leases, and proactively
	// migrates replicas off quarantined donors.
	HealthChecks bool
}

// DefaultBedConfig mirrors the paper's default hardware (Table 3) with
// RangeScan sizing (Table 4): 32 MB local memory, 128 MB BPExt, 8 MB
// TempDB.
func DefaultBedConfig(d Design) BedConfig {
	return BedConfig{
		Design:        d,
		Spindles:      20,
		LocalMemBytes: 32 << 20,
		BPExtBytes:    128 << 20,
		TempBytes:     8 << 20,
		RemoteServers: 1,
		MRBytes:       8 << 20,
		Seed:          1,
		OLTP:          true,
	}
}

// Bed is one assembled test bed.
type Bed struct {
	K       *sim.Kernel
	Cfg     BedConfig
	DB      *cluster.Server
	Mems    []*cluster.Server
	Store   *metastore.Store
	Broker  *broker.Cluster
	Proxies []*broker.Proxy
	FS      *core.FS
	Eng     *engine.Engine

	TempFile  vfs.File
	BPExtFile vfs.File

	// snaps holds frame snapshots recorded by FaultStaleSnapshot for
	// later resurrection by FaultStaleRestore.
	snaps map[frameSnap][]byte
}

// serverConfig returns the Table 3 server scaled down.
func serverConfig(spindles int) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Spindles = spindles
	cfg.MemoryBytes = 384 << 20
	return cfg
}

// NewBed assembles a bed inside the running simulation process p.
func NewBed(p *sim.Proc, cfg BedConfig) (*Bed, error) {
	k := p.Kernel()
	bed := &Bed{K: k, Cfg: cfg}
	bed.DB = cluster.NewServer(k, "db1", serverConfig(cfg.Spindles))

	// Effective local memory: the Local Memory design gets the remote
	// memory's worth locally (Section 5.3).
	localBytes := cfg.LocalMemBytes
	if cfg.Design == DesignLocalMemory {
		localBytes += cfg.BPExtBytes + cfg.TempBytes
	}
	frames := int(localBytes / page.Size)

	// Remote side.
	var tempFile, bpextFile vfs.File
	if cfg.Design.Remote() {
		store := metastore.New(k, 10*time.Microsecond)
		bed.Store = store
		bcfg := broker.DefaultConfig()
		if cfg.LeaseTTL > 0 {
			bcfg.LeaseTTL = cfg.LeaseTTL
		}
		bcfg.Quotas = cfg.TenantQuotas
		shards := cfg.BrokerShards
		if shards < 1 {
			shards = 1
		}
		b := broker.NewCluster(p, store, shards, bcfg)
		bed.Broker = b
		if cfg.ExpireEvery > 0 {
			k.Go("broker-expire", func(ep *sim.Proc) { b.ExpireLoop(ep, cfg.ExpireEvery) })
		}
		repl := cfg.Replication
		if repl < 1 {
			repl = 1
		}
		// With integrity framing each MR holds slightly less than
		// MRBytes of logical data (the per-block trailers), and each
		// stripe is leased on repl distinct donors, so size the donor
		// pool for the framed capacity times the replication factor.
		stripeCap := int64(cfg.MRBytes)
		if cfg.Integrity || repl > 1 {
			stripeCap = core.StripeCapacity(cfg.MRBytes, 0)
		}
		servers := cfg.RemoteServers
		if servers < repl {
			servers = repl // anti-affinity needs at least K donors
		}
		stripes := (cfg.TempBytes + stripeCap - 1) / stripeCap
		stripes += (cfg.BPExtBytes + stripeCap - 1) / stripeCap
		mrsTotal := stripes * int64(repl)
		mrs := int((mrsTotal+int64(servers)-1)/int64(servers)) + 4
		for i := 0; i < servers; i++ {
			m := cluster.NewServer(k, fmt.Sprintf("mem%d", i+1), serverConfig(cfg.Spindles))
			bed.Mems = append(bed.Mems, m)
			px, err := b.AddProxy(p, m, cfg.MRBytes, mrs)
			if err != nil {
				return nil, err
			}
			bed.Proxies = append(bed.Proxies, px)
		}
		clientCfg := rmem.DefaultClientConfig()
		if cfg.Design != DesignCustom {
			clientCfg.Mode = rmem.AccessAsync
		}
		client := rmem.NewClient(p, bed.DB, clientCfg)
		fsCfg := core.DefaultConfig()
		fsCfg.Protocol = cfg.Design.protocol()
		fsCfg.Recover = !cfg.NoRecover
		fsCfg.Integrity = cfg.Integrity
		fsCfg.Replication = cfg.Replication
		fsCfg.ScrubEvery = cfg.ScrubEvery
		fsCfg.HeartbeatEvery = cfg.HeartbeatEvery
		fsCfg.Tenant = cfg.Tenant
		fsCfg.DeadlineBudget = cfg.DeadlineBudget
		fsCfg.Hedging = cfg.Hedging
		fsCfg.HedgeAfter = cfg.HedgeAfter
		fsCfg.HedgeRateCap = cfg.HedgeRateCap
		fsCfg.HealthChecks = cfg.HealthChecks
		if cfg.Retry.MaxAttempts > 0 {
			fsCfg.Retry = cfg.Retry
		}
		bed.FS = core.NewFS(p, b, client, fsCfg)

		if cfg.TempBytes > 0 {
			f, err := bed.FS.Create(p, "tempdb", cfg.TempBytes)
			if err != nil {
				return nil, err
			}
			if err := f.OpenConn(p); err != nil {
				return nil, err
			}
			tempFile = f
		}
		if cfg.BPExtBytes > 0 {
			f, err := bed.FS.Create(p, "bpext", cfg.BPExtBytes)
			if err != nil {
				return nil, err
			}
			if err := f.OpenConn(p); err != nil {
				return nil, err
			}
			bpextFile = f
		}
	} else {
		switch cfg.Design {
		case DesignHDD:
			tempFile = vfs.NewDeviceFile("tempdb", bed.DB.HDD)
		case DesignHDDSSD, DesignLocalMemory:
			tempFile = vfs.NewDeviceFile("tempdb", bed.DB.SSD)
		}
		if cfg.Design == DesignHDDSSD && cfg.OLTP && cfg.BPExtBytes > 0 {
			bpextFile = vfs.NewDeviceFile("bpext", bed.DB.SSD)
		}
	}
	bed.TempFile = tempFile
	bed.BPExtFile = bpextFile

	ecfg := engine.DefaultConfig(frames)
	ecfg.Eviction = cfg.Eviction
	ecfg.NoBatchedIO = cfg.NoBatchedIO
	ecfg.Readahead = cfg.Readahead
	ecfg.Pushdown = cfg.Pushdown
	ecfg.DonorPrice = cfg.DonorPrice
	ecfg.Budget = cfg.DeadlineBudget
	if cfg.GrantBytes > 0 {
		ecfg.Grant = cfg.GrantBytes
	}
	if bpextFile != nil {
		ecfg.BPExtSlots = int(cfg.BPExtBytes / page.Size)
	}
	if cfg.Design.Remote() {
		ecfg.SemCache = func(p *sim.Proc, name string, size int64) (vfs.File, error) {
			f, err := bed.FS.Create(p, "semcache-"+name, size)
			if err != nil {
				return nil, err
			}
			return f, f.OpenConn(p)
		}
	} else {
		ecfg.SemCache = func(p *sim.Proc, name string, size int64) (vfs.File, error) {
			return vfs.NewDeviceFile("semcache-"+name, bed.DB.SSD), nil
		}
	}

	files := engine.Files{
		Data:  vfs.NewDeviceFile("data", bed.DB.HDD),
		Log:   vfs.NewDeviceFile("log", bed.DB.HDD),
		Temp:  tempFile,
		BPExt: bpextFile,
	}
	eng, err := engine.New(p, bed.DB, files, ecfg)
	if err != nil {
		return nil, err
	}
	bed.Eng = eng
	if cfg.Design.Remote() && !cfg.NoRecover {
		bed.wireSalvage()
	}
	return bed, nil
}

// wireSalvage connects the engine's remote-memory consumers to the FS's
// restripe recovery. After a lost stripe is re-leased:
//   - the buffer-pool extension forgets the page mappings of the lost
//     range (every cached page was clean, so dropping them is a complete
//     recovery) and revives the tier if it was disabled;
//   - a semantic-cache entry whose file was hit is rebuilt in place from
//     its checkpoint snapshot plus WAL REDO replay (§6.3).
//
// TempDB deliberately gets no salvage: spill data is transient, and the
// queries that owned it have already seen the degraded-mode error.
func (bed *Bed) wireSalvage() {
	if f, ok := bed.BPExtFile.(*core.File); ok {
		f.SetSalvage(func(p *sim.Proc, cf *core.File, off, n int64) error {
			if ext := bed.Eng.BP.Extension(); ext != nil {
				ext.InvalidateRange(off, n)
				ext.Revive()
			}
			return nil
		})
	}
	// Semantic-cache files are created later (at Build time), so they
	// inherit the FS-wide default salvage installed here.
	bed.FS.DefaultSalvage = func(p *sim.Proc, cf *core.File, off, n int64) error {
		if bed.Eng == nil || bed.Eng.Cache == nil {
			return nil
		}
		_, err := bed.Eng.Cache.SalvageFile(p, cf.Name())
		return err
	}
}

// Close tears the bed down: it stops the engine's background machinery
// and closes all remote files (ending their lease-renewal processes) so
// the simulation's event queue can drain promptly. Every experiment
// runner must call it when done.
func (bed *Bed) Close(p *sim.Proc) {
	if bed.Eng != nil {
		bed.Eng.Shutdown()
	}
	if bed.Broker != nil {
		bed.Broker.StopExpireLoop()
	}
	if bed.FS != nil {
		bed.FS.CloseAll(p)
	}
}

// RunInSim is the standard experiment wrapper: it creates a kernel,
// runs fn as the root process, and drives the simulation to completion
// (bounded by limit to catch runaway experiments).
func RunInSim(seed int64, limit time.Duration, fn func(p *sim.Proc) error) error {
	k := sim.New(seed)
	var err error
	k.Go("experiment", func(p *sim.Proc) {
		err = fn(p)
	})
	k.Run(limit)
	return err
}
