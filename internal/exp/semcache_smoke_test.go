package exp

import (
	"testing"
	"time"
)

func TestFig15aSmoke(t *testing.T) {
	// sf 0.02 in both modes: at 0.01 the MVs get small enough that the
	// SSD-placement improvement dips under the asserted 1.5x.
	res, remoteOverSSD, err := RunFig15aSemanticCacheMV(1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7 {
		t.Fatalf("cases = %d, want 7", len(res))
	}
	for _, r := range res {
		t.Logf("Q%d: base=%v ssd=%v remote=%v (%.0fx / %.0fx) mv=%dKB",
			r.QueryID, r.BaseLatency, r.SSDLatency, r.RemoteLat,
			r.ImprovementSSD(), r.ImprovementRemote(), r.MVBytes>>10)
		if r.ImprovementSSD() < 1.5 {
			t.Errorf("Q%d: MV on SSD should improve the query (%.2fx)", r.QueryID, r.ImprovementSSD())
		}
		if r.RemoteLat > r.SSDLatency {
			t.Errorf("Q%d: remote MV (%v) should not be slower than SSD MV (%v)", r.QueryID, r.RemoteLat, r.SSDLatency)
		}
	}
	t.Logf("aggregate remote-over-ssd factor: %.2fx", remoteOverSSD)
	if remoteOverSSD < 1.2 {
		t.Errorf("remote placement should beat SSD placement overall: %.2fx", remoteOverSSD)
	}
}

func TestFig15bSmoke(t *testing.T) {
	remote, ssd, err := RunFig15bSeekVsScan(1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	cross := func(pts []Fig15bPoint) float64 {
		// Return the highest selectivity at which INLJ still wins.
		last := 0.0
		for _, pt := range pts {
			if pt.INLJ < pt.HJ {
				last = pt.Selectivity
			}
		}
		return last
	}
	for _, pt := range remote {
		t.Logf("remote sel=%.4f inlj=%v hj=%v", pt.Selectivity, pt.INLJ, pt.HJ)
	}
	for _, pt := range ssd {
		t.Logf("ssd    sel=%.4f inlj=%v hj=%v", pt.Selectivity, pt.INLJ, pt.HJ)
	}
	cr, cs := cross(remote), cross(ssd)
	t.Logf("crossover: remote=%.4f ssd=%.4f", cr, cs)
	// At low selectivity INLJ must win somewhere; at 20% HJ must win.
	if remote[0].INLJ >= remote[0].HJ {
		t.Error("remote: INLJ should win at the lowest selectivity")
	}
	last := remote[len(remote)-1]
	if last.INLJ <= last.HJ {
		t.Error("remote: HJ should win at the highest selectivity")
	}
	// The paper's point: the crossover moves right when seeks are cheap.
	if cr < cs {
		t.Errorf("remote crossover (%.4f) should be >= ssd crossover (%.4f)", cr, cs)
	}
}

func TestFig26Smoke(t *testing.T) {
	pts, err := RunFig26CacheRecovery(1)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for _, pt := range pts {
		t.Logf("dirty=%dMB recovery=%v replayed=%d", pt.DirtyBytes>>20, pt.RecoveryTime, pt.Replayed)
		if pt.RecoveryTime <= prev {
			t.Error("recovery time should grow with dirty volume")
		}
		prev = pt.RecoveryTime
	}
	// Near-linear with an intercept (the paper's Figure 26 has one too:
	// <1 GB in tens of seconds, 16 GB in ~4 minutes = 12x for 16x data).
	ratio := float64(pts[len(pts)-1].RecoveryTime) / float64(pts[0].RecoveryTime)
	if ratio < 2.5 || ratio > 40 {
		t.Errorf("recovery scaling = %.1fx for 16x data", ratio)
	}
	// The marginal cost must keep growing with the dirty volume.
	d1 := pts[3].RecoveryTime - pts[2].RecoveryTime
	d2 := pts[4].RecoveryTime - pts[3].RecoveryTime
	if d2 <= d1 {
		t.Errorf("marginal recovery cost not growing: %v then %v", d1, d2)
	}
}
