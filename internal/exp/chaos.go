// Chaos harness for the tail-tolerance layer: the 200+-participant
// cluster bed from cluster.go is driven through three scenarios that a
// merely-reactive fault ladder cannot survive gracefully:
//
//  1. Slow donors — a handful of donors serve every transfer with
//     millisecond-scale injected delay (reclaiming under pressure,
//     NIC-saturated). Run twice from the same seed, hedging off vs on,
//     to measure how much of the read tail hedged reads claw back.
//  2. Reclamation storm — the diurnal wave from the cluster benchmark,
//     but with the full tail-tolerance stack (deadline budgets, hedged
//     reads, donor health scoring) engaged while leases are shed.
//  3. Flapping donor — one donor oscillates between slow and healthy,
//     exercising the breaker's brownout, probe, and recovery arcs.
//
// The harness asserts the tentpole's contract: zero engine-visible
// errors everywhere, hedging cuts the slow-donor read p99 by at least
// HedgeGain, the hedge rate stays under its cap, p99 stays bounded
// through the storm, and throughput recovers to near baseline after
// the storm clears.

package exp

import (
	"fmt"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/core"
	"remotedb/internal/metrics"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// ChaosParams sizes the chaos harness.
type ChaosParams struct {
	Shards   int // broker shards
	Donors   int // memory servers donating MRs
	Holders  int // database servers (participants = Holders + Donors)
	MRBytes  int
	DonorMRs int
	FileBytes int64

	Replication    int           // replicas per stripe (hedging needs >= 2)
	DeadlineBudget time.Duration // per-op budget in the storm/flap scenarios
	HedgeRateCap   float64       // max fraction of tolerant reads hedged

	LeaseTTL       time.Duration
	HeartbeatEvery time.Duration
	ExpireEvery    time.Duration
	Measure        time.Duration // per measurement window

	SlowDonors int           // donors slowed in the slow-donor scenario
	SlowBy     time.Duration // injected per-transfer service delay
	// WarmReads/ReadsPerHolder size the fixed-workload slow-donor A/B:
	// every holder does WarmReads unmeasured reads (hedge thresholds
	// need per-donor p95 samples), then ReadsPerHolder measured ones.
	WarmReads      int
	ReadsPerHolder int

	StormPulses int
	StormFrac   float64

	FlapCycles int           // slow/healthy oscillations of the flapping donor
	FlapPeriod time.Duration // one full oscillation
	FlapBy     time.Duration // injected delay during the slow half

	// HedgeGain is the minimum factor by which hedging must cut the
	// slow-donor read p99 vs the hedging-off arm.
	HedgeGain float64
}

// DefaultChaosParams: the cluster bed's geometry (160 holders + 48
// donors = 208 participants on a 4-shard broker) with 2-way replicated
// stripes so hedges and failover have somewhere to go.
func DefaultChaosParams() ChaosParams {
	return ChaosParams{
		Shards:         4,
		Donors:         48,
		Holders:        160,
		MRBytes:        128 << 10,
		DonorMRs:       64,
		FileBytes:      1 << 20,
		Replication:    2,
		DeadlineBudget: 10 * time.Millisecond,
		HedgeRateCap:   0.25,
		LeaseTTL:       120 * time.Millisecond,
		HeartbeatEvery: 40 * time.Millisecond,
		ExpireEvery:    60 * time.Millisecond,
		Measure:        200 * time.Millisecond,
		SlowDonors:     3,
		SlowBy:         2 * time.Millisecond,
		WarmReads:      200,
		ReadsPerHolder: 400,
		StormPulses:    3,
		StormFrac:      0.10,
		FlapCycles:     3,
		FlapPeriod:     80 * time.Millisecond,
		FlapBy:         2 * time.Millisecond,
		HedgeGain:      2.0,
	}
}

// QuickChaosParams shrinks the bed and the measurement windows for the
// CI pass; rmbench -quick and the -short smoke test use it (the
// committed BENCH_chaos.json baseline is the quick run).
func QuickChaosParams() ChaosParams {
	prm := DefaultChaosParams()
	prm.Holders = 48
	prm.Donors = 16
	prm.SlowDonors = 1
	prm.Measure = 60 * time.Millisecond
	prm.HeartbeatEvery = 20 * time.Millisecond
	prm.WarmReads = 150
	prm.ReadsPerHolder = 300
	return prm
}

// ChaosArm is one measured window of one scenario.
type ChaosArm struct {
	P50, P99 time.Duration
	BytesPerSec float64
	Reads       int64
}

// ChaosResult is everything the chaos harness reports.
type ChaosResult struct {
	Participants int

	// Slow-donor A/B (same seed): hedging off vs on.
	SlowOff   ChaosArm
	SlowOn    ChaosArm
	HedgeCut  float64 // SlowOff.P99 / SlowOn.P99
	HedgeRate float64 // hedged / tolerant reads in the on arm
	Hedged    int64
	HedgeWins int64
	Tolerant  int64

	// Reclamation storm with the full tail-tolerance stack.
	Healthy     ChaosArm
	Storm       ChaosArm
	Recovered   ChaosArm
	LiveBefore  int
	Shed        int
	StormSlow   int64 // reads abandoned on a blown budget during the storm run
	StormMisses int64 // rmem transfers abandoned at/before issue
	StormHedged int64
	StormMigrations int64 // replicas proactively moved off quarantined donors
	Fallbacks   int64   // reads served from local base data across all scenarios

	// Flapping donor: breaker arcs.
	FlapBrownouts  int64
	FlapQuarantines int64
	FlapProbes     int64
	FlapRecoveries int64
	HealthReports  int64 // slow-donor reports piggybacked on heartbeats

	Errors int64 // engine-visible errors across every scenario (must be 0)
}

// chaosHolderConfig mutates the per-holder FS config for one scenario.
type chaosHolderConfig func(cfg *core.Config)

// buildChaosBed assembles the sharded broker, donors, and holders. It
// returns the donor servers so scenarios can inject service delay.
func buildChaosBed(p *sim.Proc, prm ChaosParams, mut chaosHolderConfig) (*broker.Cluster, []*cluster.Server, []*clusterHolder, error) {
	k := p.Kernel()
	store := metastore.New(k, 10*time.Microsecond)
	bcfg := broker.DefaultConfig()
	bcfg.LeaseTTL = prm.LeaseTTL
	c := broker.NewCluster(p, store, prm.Shards, bcfg)
	if prm.ExpireEvery > 0 {
		k.Go("chaos-broker-expire", func(ep *sim.Proc) { c.ExpireLoop(ep, prm.ExpireEvery) })
	}
	var donors []*cluster.Server
	for i := 0; i < prm.Donors; i++ {
		m := cluster.NewServer(k, fmt.Sprintf("mem%d", i+1), serverConfig(4))
		if _, err := c.AddProxy(p, m, prm.MRBytes, prm.DonorMRs); err != nil {
			return nil, nil, nil, err
		}
		donors = append(donors, m)
	}
	var hs []*clusterHolder
	// Holder machines get a deeper core pool than the Table 3 default: an
	// abandoned hedge loser holds an initiator slot until the slow donor
	// finally answers, and under a 2ms injected delay tens of orphans can
	// be in flight at once. With only 40 cores those orphans exhaust the
	// client and every read — hedged or not — queues behind them for the
	// full injected delay, which is exactly the head-of-line blocking the
	// hedge exists to avoid.
	holderCfg := serverConfig(4)
	holderCfg.Cores = 256
	for i := 0; i < prm.Holders; i++ {
		db := cluster.NewServer(k, fmt.Sprintf("db%d", i+1), holderCfg)
		client := rmem.NewClient(p, db, rmem.DefaultClientConfig())
		fsCfg := core.DefaultConfig()
		fsCfg.Tenant = clusterTenants[i%len(clusterTenants)]
		fsCfg.HeartbeatEvery = prm.HeartbeatEvery
		fsCfg.Replication = prm.Replication
		fsCfg.HedgeRateCap = prm.HedgeRateCap
		if mut != nil {
			mut(&fsCfg)
		}
		fs := core.NewFS(p, c, client, fsCfg)
		f, err := fs.Create(p, "work", prm.FileBytes)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("holder %d: %w", i, err)
		}
		if err := f.OpenConn(p); err != nil {
			return nil, nil, nil, err
		}
		// Populate the file: replicated stripes are integrity-framed, and
		// an unwritten framed block is served as zeros without touching
		// remote memory — the chaos read loops must actually hit donors.
		chunk := make([]byte, 64<<10)
		for j := range chunk {
			chunk[j] = byte(i + j)
		}
		for off := int64(0); off < prm.FileBytes; off += int64(len(chunk)) {
			n := int64(len(chunk))
			if off+n > prm.FileBytes {
				n = prm.FileBytes - off
			}
			if err := f.WriteAt(p, chunk[:n], off); err != nil {
				return nil, nil, nil, fmt.Errorf("holder %d init: %w", i, err)
			}
		}
		local := vfs.NewDeviceFile("base", db.SSD)
		// A storm can revoke every replica of a stripe; without salvage
		// the restripe would leave the range zeroed. Repopulate it from
		// base data on the local SSD — the same bytes the fallback path
		// serves — so recovery does real I/O and the post-storm bed holds
		// real data again.
		f.SetSalvage(func(sp *sim.Proc, sf *core.File, off, n int64) error {
			buf := make([]byte, 64<<10)
			for o := off; o < off+n; o += int64(len(buf)) {
				m := int64(len(buf))
				if o+m > off+n {
					m = off + n - o
				}
				if err := local.ReadAt(sp, buf[:m], o); err != nil {
					return err
				}
				if err := sf.WriteAt(sp, buf[:m], o); err != nil {
					return err
				}
			}
			return nil
		})
		hs = append(hs, &clusterHolder{
			fs:    fs,
			f:     f,
			local: local,
		})
	}
	return c, donors, hs, nil
}

// arm summarizes one measured window.
func arm(h *metrics.Histogram, bytes int64, win time.Duration) ChaosArm {
	return ChaosArm{
		P50:         h.Quantile(0.5),
		P99:         h.Quantile(0.99),
		BytesPerSec: float64(bytes) / win.Seconds(),
		Reads:       h.Count(),
	}
}

// driveFixed has every holder perform exactly n random 8K reads — a
// fixed workload, so the two arms of the hedging A/B measure the same
// reads and the latency histogram is not biased toward fast holders
// the way a fixed-time closed loop would be. Pass a nil histogram for
// unmeasured warm-up rounds.
func driveFixed(p *sim.Proc, hs []*clusterHolder, n int, hist *metrics.Histogram,
	bytes, fallbacks, errs *int64) {
	k := p.Kernel()
	wg := sim.NewWaitGroup(k)
	wg.Add(len(hs))
	span := hs[0].f.Size()
	for _, h := range hs {
		h := h
		k.Go("holder-fixed", func(tp *sim.Proc) {
			defer wg.Done()
			buf := make([]byte, 8192)
			for i := 0; i < n; i++ {
				off := tp.Rand().Int63n(span/8192) * 8192
				t0 := tp.Now()
				if err := h.f.ReadAt(tp, buf, off); err != nil {
					if !reclaimable(err) {
						*errs++
						continue
					}
					if err := h.local.ReadAt(tp, buf, off); err != nil {
						*errs++
						continue
					}
					*fallbacks++
				}
				if hist != nil {
					hist.Observe(tp.Now() - t0)
					*bytes += int64(len(buf))
				}
			}
		})
	}
	wg.Wait(p)
}

// runChaosSlowDonor runs the slow-donor scenario with hedging on or
// off: an unmeasured warm-up round (hedge thresholds need per-donor
// p95 samples), then prm.SlowDonors donors go slow and every holder
// performs ReadsPerHolder measured reads.
func runChaosSlowDonor(seed int64, prm ChaosParams, hedging bool, res *ChaosResult) (ChaosArm, error) {
	var out ChaosArm
	err := RunInSim(seed, time.Hour, func(p *sim.Proc) error {
		c, donors, hs, err := buildChaosBed(p, prm, func(cfg *core.Config) {
			cfg.Hedging = hedging
			cfg.HealthChecks = false // isolate hedging in the A/B
		})
		if err != nil {
			return err
		}
		var fallbacks, errs int64
		driveFixed(p, hs, prm.WarmReads, nil, nil, &fallbacks, &errs)
		// Scatter the slow donors across the fleet instead of slowing
		// donors[0..n]: spread placement hands a stripe's replicas to
		// *adjacent* donors in round-robin order, so co-slowing adjacent
		// donors builds stripes with no healthy replica — a correlated
		// rack failure no read strategy can hedge around. The scenario
		// models independently slow machines (reclaiming, NIC-saturated),
		// which hedging is designed for.
		stride := 1
		if prm.SlowDonors > 0 {
			stride = len(donors) / prm.SlowDonors
			if stride < 1 {
				stride = 1
			}
		}
		for i := 0; i < prm.SlowDonors && i < len(donors); i++ {
			donors[(i*stride)%len(donors)].SetServiceDelay(prm.SlowBy)
		}
		hist := metrics.NewHistogram()
		var bytes int64
		start := p.Now()
		driveFixed(p, hs, prm.ReadsPerHolder, hist, &bytes, &fallbacks, &errs)
		out = arm(hist, bytes, p.Now()-start)
		res.Fallbacks += fallbacks
		res.Errors += errs
		if hedging {
			for _, h := range hs {
				res.Hedged += h.fs.HedgedReads
				res.HedgeWins += h.fs.HedgeWins
				res.Tolerant += h.fs.TolerantReads
			}
		}
		for _, h := range hs {
			h.fs.CloseAll(p)
		}
		c.StopExpireLoop()
		return nil
	})
	return out, err
}

// runChaosStorm runs the reclamation wave with the full tail-tolerance
// stack engaged: deadline budgets, hedged reads, and health scoring all
// on while StormPulses×StormFrac of the live leases are shed.
func runChaosStorm(seed int64, prm ChaosParams, res *ChaosResult) error {
	return RunInSim(seed, time.Hour, func(p *sim.Proc) error {
		c, _, hs, err := buildChaosBed(p, prm, func(cfg *core.Config) {
			cfg.Hedging = true
			cfg.HealthChecks = true
			cfg.DeadlineBudget = prm.DeadlineBudget
		})
		if err != nil {
			return err
		}
		k := p.Kernel()
		t0 := p.Now()
		t1 := t0 + prm.Measure
		t2 := t1 + prm.Measure
		t3 := t2 + prm.Measure
		hists := []*metrics.Histogram{metrics.NewHistogram(), metrics.NewHistogram(), metrics.NewHistogram()}
		bytes := []int64{0, 0, 0}
		var fallbacks, errs int64
		k.Go("chaos-reclamation-wave", func(sp *sim.Proc) {
			sp.Sleep(t1 - sp.Now())
			res.LiveBefore = c.ActiveLeases()
			per := int(float64(res.LiveBefore) * prm.StormFrac)
			gap := prm.Measure / time.Duration(prm.StormPulses+1)
			for i := 0; i < prm.StormPulses; i++ {
				res.Shed += c.ShedFair(per)
				sp.Sleep(gap)
			}
		})
		driveHolders(p, hs, t3, func(now time.Duration) int {
			switch {
			case now < t1:
				return 0
			case now < t2:
				return 1
			default:
				return 2
			}
		}, hists, bytes, &fallbacks, &errs)
		res.Healthy = arm(hists[0], bytes[0], prm.Measure)
		res.Storm = arm(hists[1], bytes[1], prm.Measure)
		res.Recovered = arm(hists[2], bytes[2], prm.Measure)
		res.Fallbacks += fallbacks
		res.Errors += errs
		for _, h := range hs {
			res.StormSlow += h.fs.SlowReads
			res.StormMisses += h.fs.Client.DeadlineMisses
			res.StormHedged += h.fs.HedgedReads
			res.StormMigrations += h.fs.ProactiveMigrations
		}
		for _, h := range hs {
			h.fs.CloseAll(p)
		}
		c.StopExpireLoop()
		return nil
	})
}

// runChaosFlap oscillates one donor between slow and healthy through
// FlapCycles, then gives the breakers a quiet window to probe it back
// to healthy. Recovery is probe-driven (the asymmetric p95 tracker
// cannot drift back down), so the quiet window must cover several
// probe intervals. Stripe repair is disabled for this scenario so the
// flapping donor keeps its replicas and stays probeable — with
// proactive restripe on, a quarantined donor would simply be evacuated
// (scenario 2 covers that arc).
func runChaosFlap(seed int64, prm ChaosParams, res *ChaosResult) error {
	return RunInSim(seed, time.Hour, func(p *sim.Proc) error {
		c, donors, hs, err := buildChaosBed(p, prm, func(cfg *core.Config) {
			cfg.Hedging = true
			cfg.HealthChecks = true
			cfg.DeadlineBudget = prm.DeadlineBudget
			cfg.Recover = false
		})
		if err != nil {
			return err
		}
		k := p.Kernel()
		t0 := p.Now()
		t1 := t0 + prm.Measure/2 // warm-up: health baselines need samples
		flapEnd := t1 + time.Duration(prm.FlapCycles)*prm.FlapPeriod
		quiet := prm.Measure
		if min := 5 * prm.HeartbeatEvery; quiet < min {
			quiet = min // >= recoverProbes probe intervals
		}
		end := flapEnd + quiet
		k.Go("chaos-flap", func(sp *sim.Proc) {
			sp.Sleep(t1 - sp.Now())
			for i := 0; i < prm.FlapCycles; i++ {
				donors[0].SetServiceDelay(prm.FlapBy)
				sp.Sleep(prm.FlapPeriod / 2)
				donors[0].SetServiceDelay(0)
				sp.Sleep(prm.FlapPeriod / 2)
			}
		})
		hist := metrics.NewHistogram()
		bytes := []int64{0}
		var fallbacks, errs int64
		driveHolders(p, hs, end, func(time.Duration) int { return 0 },
			[]*metrics.Histogram{hist}, bytes, &fallbacks, &errs)
		res.Fallbacks += fallbacks
		res.Errors += errs
		for _, h := range hs {
			res.FlapBrownouts += h.fs.Brownouts
			res.FlapQuarantines += h.fs.Quarantines
			res.FlapProbes += h.fs.HealthProbes
			res.FlapRecoveries += h.fs.HealthRecoveries
		}
		res.HealthReports = c.HealthReports()
		for _, h := range hs {
			h.fs.CloseAll(p)
		}
		c.StopExpireLoop()
		return nil
	})
}

// RunChaos runs all three scenarios and asserts the tail-tolerance
// contract. Every scenario shares the seed, so the slow-donor A/B is a
// true same-workload comparison.
func RunChaos(seed int64, prm ChaosParams) (*ChaosResult, error) {
	res := &ChaosResult{Participants: prm.Holders + prm.Donors}

	// Scenario 1: slow donors, hedging off vs on.
	off, err := runChaosSlowDonor(seed, prm, false, res)
	if err != nil {
		return nil, err
	}
	on, err := runChaosSlowDonor(seed, prm, true, res)
	if err != nil {
		return nil, err
	}
	res.SlowOff, res.SlowOn = off, on
	if on.P99 > 0 {
		res.HedgeCut = float64(off.P99) / float64(on.P99)
	}
	if res.Tolerant > 0 {
		res.HedgeRate = float64(res.Hedged) / float64(res.Tolerant)
	}
	if res.HedgeCut < prm.HedgeGain {
		return nil, fmt.Errorf("hedging cut slow-donor p99 only %.2fx (off %v, on %v); want >= %.1fx",
			res.HedgeCut, off.P99, on.P99, prm.HedgeGain)
	}
	if res.HedgeRate > prm.HedgeRateCap+0.01 {
		return nil, fmt.Errorf("hedge rate %.3f exceeds cap %.3f", res.HedgeRate, prm.HedgeRateCap)
	}
	if res.Hedged == 0 || res.HedgeWins == 0 {
		return nil, fmt.Errorf("slow-donor scenario fired no hedges (hedged=%d wins=%d)", res.Hedged, res.HedgeWins)
	}

	// Scenario 2: reclamation storm under the full stack.
	if err := runChaosStorm(seed, prm, res); err != nil {
		return nil, err
	}
	if res.Shed == 0 {
		return nil, fmt.Errorf("storm shed no leases (live before: %d)", res.LiveBefore)
	}
	if res.Healthy.P99 > 0 && res.Storm.P99 > 20*res.Healthy.P99 {
		return nil, fmt.Errorf("storm p99 %v unbounded vs healthy %v", res.Storm.P99, res.Healthy.P99)
	}
	if res.Recovered.BytesPerSec < 0.7*res.Healthy.BytesPerSec {
		return nil, fmt.Errorf("post-storm throughput %.0f B/s never recovered (healthy %.0f B/s)",
			res.Recovered.BytesPerSec, res.Healthy.BytesPerSec)
	}

	// Scenario 3: flapping donor — the breaker must trip and recover.
	if err := runChaosFlap(seed, prm, res); err != nil {
		return nil, err
	}
	if res.FlapBrownouts+res.FlapQuarantines == 0 {
		return nil, fmt.Errorf("flapping donor never tripped a breaker")
	}
	if res.FlapProbes == 0 {
		return nil, fmt.Errorf("no recovery probes were routed through the flapping donor")
	}
	if res.FlapRecoveries == 0 {
		return nil, fmt.Errorf("flapping donor never probed back to healthy (probes=%d)", res.FlapProbes)
	}
	if res.HealthReports == 0 {
		return nil, fmt.Errorf("no slow-donor reports reached the broker via heartbeats")
	}

	if res.Errors > 0 {
		return nil, fmt.Errorf("%d engine-visible errors across chaos scenarios", res.Errors)
	}
	return res, nil
}
