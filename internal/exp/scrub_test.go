package exp

import (
	"testing"
	"time"
)

// scrubParams returns the experiment parameters, scaled down under
// -short so the whole exp package stays CI-viable.
func scrubParams(t *testing.T) ScrubParams {
	prm := DefaultScrubParams()
	if testing.Short() {
		// Rows must still exceed the 8 MiB buffer pool (~245 B/row) or
		// the BPExt sees no traffic and the storms have nothing to hit.
		prm.Rows = 40000
		prm.Clients = 8
		prm.Window = 120 * time.Millisecond
	}
	return prm
}

// TestScrubCorruptionStorm is the tentpole acceptance test: a storm of
// bit flips, torn writes, and stale-replica resurrections poked into
// donor memory mid-RangeScan must be fully detected — no silently wrong
// bytes ever reach the engine — and repaired from a healthy replica,
// with zero engine-visible errors and no block left unreadable.
func TestScrubCorruptionStorm(t *testing.T) {
	prm := scrubParams(t)
	res, err := RunScrub(1, prm)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("corruption storm: injected=%d detected=%d repaired=%d failovers=%d sweeps=%d checked=%d errors=%d",
		res.Injected, res.Detected, res.Repaired, res.Failovers,
		res.ScrubSweeps, res.ScrubChecked, res.Errors)
	if res.Errors != 0 {
		t.Errorf("corruption storm leaked %d engine-visible errors, want 0", res.Errors)
	}
	if res.Detected == 0 {
		t.Error("no corruption detected: injections did not land or verification is dead")
	}
	if res.Repaired == 0 {
		t.Error("no frame repaired from a replica")
	}
	if res.Poisoned != 0 {
		t.Errorf("%d blocks left poisoned, want 0 (every corruption had a healthy copy)", res.Poisoned)
	}
	if res.ScrubSweeps == 0 || res.ScrubChecked == 0 {
		t.Errorf("scrubber idle: sweeps=%d checked=%d", res.ScrubSweeps, res.ScrubChecked)
	}

	t.Logf("revocation storm: stripes=%d replicaRepairs=%d salvages=%d lost=%d errors=%d healthy=%v",
		res.StormStripes, res.ReplicaRepairs, res.Salvages, res.LostStripes,
		res.StormErrors, res.StormHealthy)
	if res.StormStripes < 16 {
		t.Errorf("storm hit %d stripes, want >= 16", res.StormStripes)
	}
	if res.StormErrors != 0 {
		t.Errorf("revocation storm leaked %d engine-visible errors, want 0", res.StormErrors)
	}
	if res.Salvages != 0 {
		t.Errorf("%d salvage invocations, want 0: replication must absorb revocation without salvage", res.Salvages)
	}
	if res.LostStripes != 0 {
		t.Errorf("%d whole-stripe losses, want 0: a replica survived every revocation", res.LostStripes)
	}
	if res.ReplicaRepairs < int64(res.StormStripes) {
		t.Errorf("replicaRepairs=%d, want >= %d (every revoked replica rebuilt)",
			res.ReplicaRepairs, res.StormStripes)
	}
	if !res.StormHealthy {
		t.Error("bpext not fully re-replicated after settling")
	}
}
