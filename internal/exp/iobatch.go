// The iobatch experiment measures the vectored I/O path end to end:
// (A) multi-page transfers over a remote file, per-page vs batched —
// the doorbell coalescing turns one charged round trip per page into
// one per destination server; (B) buffer-pool priming with per-page vs
// burst-amortized staging copies; (C) an eviction storm driving the
// buffer pool's write-back and extension-put paths with batched I/O off
// vs on, which also surfaces the staging-slot contention counters.
package exp

import (
	"fmt"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/page"
	"remotedb/internal/engine/prime"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// IOBatchParams sizes the experiment.
type IOBatchParams struct {
	Pages      int // pages moved per phase-A pass
	Burst      int // vector length for batched transfers
	PrimePages int // resident pages primed in phase B
	StormPages int // dirty pages churned through the storm pool
	Frames     int // storm pool frames (kept far below StormPages)
}

// DefaultIOBatchParams moves 512 pages in 32-page vectors, primes a
// 1024-page pool, and storms 768 dirty pages through 64 frames.
func DefaultIOBatchParams() IOBatchParams {
	return IOBatchParams{
		Pages:      512,
		Burst:      32,
		PrimePages: 1024,
		StormPages: 768,
		Frames:     64,
	}
}

// IOBatchResult reports all three phases.
type IOBatchResult struct {
	// Phase A: remote-file transfers, scalar loop vs ReadAtV/WriteAtV.
	ScalarWrite, BatchedWrite time.Duration
	ScalarRead, BatchedRead   time.Duration
	ScalarRT, BatchedRT       int64 // charged round trips per pass
	RTReduction               float64
	ReadSpeedup, WriteSpeedup float64

	// Phase B: priming pipeline, per-page vs burst staging.
	PrimeScalar, PrimeBurst time.Duration
	PrimeSpeedup            float64

	// Phase C: eviction storm, batched I/O off vs on.
	StormScalar, StormBatched     time.Duration
	StormScalarRT, StormBatchedRT int64
	StormSpeedup                  float64
	StagingWaits                  int64
	StagingWaitMS                 float64
	StagingHighWater              int
}

// RunIOBatch runs the three phases and reports timings, charged round
// trips, and staging contention.
func RunIOBatch(seed int64, prm IOBatchParams) (IOBatchResult, error) {
	var res IOBatchResult
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		if err := ioBatchTransfers(p, prm, &res); err != nil {
			return err
		}
		if err := ioBatchPrime(p, prm, &res); err != nil {
			return err
		}
		for _, batched := range []bool{false, true} {
			if err := ioBatchStorm(p, prm, batched, &res); err != nil {
				return err
			}
		}
		if res.BatchedRT > 0 {
			res.RTReduction = float64(res.ScalarRT) / float64(res.BatchedRT)
		}
		if res.BatchedRead > 0 {
			res.ReadSpeedup = float64(res.ScalarRead) / float64(res.BatchedRead)
		}
		if res.BatchedWrite > 0 {
			res.WriteSpeedup = float64(res.ScalarWrite) / float64(res.BatchedWrite)
		}
		if res.PrimeBurst > 0 {
			res.PrimeSpeedup = float64(res.PrimeScalar) / float64(res.PrimeBurst)
		}
		if res.StormBatched > 0 {
			res.StormSpeedup = float64(res.StormScalar) / float64(res.StormBatched)
		}
		return nil
	})
	return res, err
}

// ioBatchTransfers is phase A: move Pages pages through a framed remote
// file, once with a per-page loop and once in Burst-length vectors.
func ioBatchTransfers(p *sim.Proc, prm IOBatchParams, res *IOBatchResult) error {
	cfg := DefaultBedConfig(DesignCustom)
	cfg.Integrity = true
	cfg.BPExtBytes = 0
	cfg.TempBytes = 4 << 20
	bed, err := NewBed(p, cfg)
	if err != nil {
		return err
	}
	defer bed.Close(p)
	size := int64(prm.Pages) * page.Size
	f, err := bed.FS.Create(p, "iobench", size)
	if err != nil {
		return err
	}
	if err := f.OpenConn(p); err != nil {
		return err
	}
	img := make([]byte, page.Size)
	for i := range img {
		img[i] = byte(i)
	}

	// Scalar pass: one call (one charged round trip) per page.
	rt0 := bed.FS.Client.RoundTrips
	t0 := p.Now()
	for i := 0; i < prm.Pages; i++ {
		if err := f.WriteAt(p, img, int64(i)*page.Size); err != nil {
			return err
		}
	}
	res.ScalarWrite = p.Now() - t0
	t0 = p.Now()
	for i := 0; i < prm.Pages; i++ {
		if err := f.ReadAt(p, img, int64(i)*page.Size); err != nil {
			return err
		}
	}
	res.ScalarRead = p.Now() - t0
	res.ScalarRT = bed.FS.Client.RoundTrips - rt0

	// Batched pass: Burst-length vectors through WriteAtV/ReadAtV.
	bufs := make([][]byte, prm.Burst)
	for i := range bufs {
		bufs[i] = make([]byte, page.Size)
		copy(bufs[i], img)
	}
	rt0 = bed.FS.Client.RoundTrips
	t0 = p.Now()
	for base := 0; base < prm.Pages; base += prm.Burst {
		var vecs []vfs.Vec
		for j := 0; j < prm.Burst && base+j < prm.Pages; j++ {
			vecs = append(vecs, vfs.Vec{Off: int64(base+j) * page.Size, Buf: bufs[j]})
		}
		if err := f.WriteAtV(p, vecs); err != nil {
			return err
		}
	}
	res.BatchedWrite = p.Now() - t0
	t0 = p.Now()
	for base := 0; base < prm.Pages; base += prm.Burst {
		var vecs []vfs.Vec
		for j := 0; j < prm.Burst && base+j < prm.Pages; j++ {
			vecs = append(vecs, vfs.Vec{Off: int64(base+j) * page.Size, Buf: bufs[j]})
		}
		if err := f.ReadAtV(p, vecs); err != nil {
			return err
		}
	}
	res.BatchedRead = p.Now() - t0
	res.BatchedRT = bed.FS.Client.RoundTrips - rt0
	return nil
}

// ioBatchPrime is phase B: warm a pool, then prime a cold peer twice —
// per-page staging vs burst staging.
func ioBatchPrime(p *sim.Proc, prm IOBatchParams, res *IOBatchResult) error {
	k := p.Kernel()
	scfg := cluster.DefaultConfig()
	scfg.MemoryBytes = 256 << 20
	s1 := cluster.NewServer(k, "prime-s1", scfg)
	s2 := cluster.NewServer(k, "prime-s2", scfg)
	mkPool := func(s *cluster.Server) (*buffer.Pool, error) {
		bcfg := buffer.DefaultConfig(prm.PrimePages + 8)
		bcfg.WriterPeriod = 0
		return buffer.New(p, s, vfs.NewDeviceFile("data", s.HDD), bcfg)
	}
	src, err := mkPool(s1)
	if err != nil {
		return err
	}
	for i := 0; i < prm.PrimePages; i++ {
		h, _, err := src.Allocate(p, page.TypeHeap)
		if err != nil {
			return err
		}
		h.Release()
	}
	if err := src.FlushAll(p); err != nil {
		return err
	}

	dst1, err := mkPool(s2)
	if err != nil {
		return err
	}
	st, err := prime.Prime(p, s1, s2, src, dst1)
	if err != nil {
		return err
	}
	res.PrimeScalar = st.Total()

	dst2, err := mkPool(s2)
	if err != nil {
		return err
	}
	st, err = prime.PrimeBurst(p, s1, s2, src, dst2, prime.DefaultBurst)
	if err != nil {
		return err
	}
	res.PrimeBurst = st.Total()
	return nil
}

// ioBatchStorm is phase C: churn StormPages dirty pages through a small
// pool whose extension lives in remote memory, so every eviction pays a
// write-back and queues an extension put. With batched I/O the lazy
// writer flushes vectors and the extension puts ship in grouped
// transfers; the staging counters record slot contention either way.
func ioBatchStorm(p *sim.Proc, prm IOBatchParams, batched bool, res *IOBatchResult) error {
	cfg := DefaultBedConfig(DesignCustom)
	cfg.LocalMemBytes = int64(prm.Frames) * page.Size
	cfg.BPExtBytes = int64(prm.StormPages*2) * page.Size
	cfg.TempBytes = 4 << 20
	cfg.NoBatchedIO = !batched
	bed, err := NewBed(p, cfg)
	if err != nil {
		return err
	}
	defer bed.Close(p)
	bp := bed.Eng.BP
	rt0 := bed.FS.Client.RoundTrips
	t0 := p.Now()
	var pages []uint64
	for i := 0; i < prm.StormPages; i++ {
		h, no, err := bp.Allocate(p, page.TypeHeap)
		if err != nil {
			return err
		}
		h.MarkDirty(uint64(i + 1))
		h.Release()
		pages = append(pages, no)
	}
	// Re-read a slice of the evicted range so the storm also exercises
	// extension hits, then settle the background flushers.
	for _, no := range pages[:len(pages)/4] {
		h, err := bp.Get(p, no)
		if err != nil {
			return err
		}
		h.Release()
	}
	p.Sleep(20 * time.Millisecond)
	elapsed := p.Now() - t0
	rts := bed.FS.Client.RoundTrips - rt0
	if batched {
		res.StormBatched = elapsed
		res.StormBatchedRT = rts
		c := &bed.FS.Client.StagingContention
		res.StagingWaits = c.Waits
		res.StagingWaitMS = float64(c.WaitTime) / float64(time.Millisecond)
		res.StagingHighWater = c.HighWater
	} else {
		res.StormScalar = elapsed
		res.StormScalarRT = rts
	}
	return nil
}

// String renders the result as the human-readable table rmbench prints.
func (r IOBatchResult) String() string {
	return fmt.Sprintf(
		"transfers: scalar rt=%d batched rt=%d (%.1fx fewer)\n"+
			"  write %v -> %v (%.2fx)  read %v -> %v (%.2fx)\n"+
			"prime: %v -> %v (%.2fx)\n"+
			"storm: %v rt=%d -> %v rt=%d (%.2fx)\n"+
			"staging: waits=%d wait=%.3fms highwater=%d",
		r.ScalarRT, r.BatchedRT, r.RTReduction,
		r.ScalarWrite.Round(time.Microsecond), r.BatchedWrite.Round(time.Microsecond), r.WriteSpeedup,
		r.ScalarRead.Round(time.Microsecond), r.BatchedRead.Round(time.Microsecond), r.ReadSpeedup,
		r.PrimeScalar.Round(time.Microsecond), r.PrimeBurst.Round(time.Microsecond), r.PrimeSpeedup,
		r.StormScalar.Round(time.Microsecond), r.StormScalarRT,
		r.StormBatched.Round(time.Microsecond), r.StormBatchedRT, r.StormSpeedup,
		r.StagingWaits, r.StagingWaitMS, r.StagingHighWater)
}
