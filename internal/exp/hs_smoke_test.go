package exp

import (
	"testing"
)

func TestHashSortSmoke(t *testing.T) {
	for _, d := range []Design{DesignHDDSSD, DesignCustom} {
		prm := DefaultHashSortParams()
		r, err := RunHashSort(1, d, prm)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		t.Logf("%v: lat=%v joinSpill=%v sortSpill=%v wrote=%dMB read=%dMB",
			d, r.Latency, r.JoinSpilled, r.SortSpilled, r.TempDBWrote>>20, r.TempDBRead>>20)
	}
}
