package exp

import (
	"testing"
)

func TestHashSortSmoke(t *testing.T) {
	for _, d := range []Design{DesignHDDSSD, DesignCustom} {
		prm := DefaultHashSortParams()
		if testing.Short() {
			// Half the tables, half the grant: the join and sort still
			// spill (the point of the experiment), in half the wall time.
			prm.Cfg.Orders /= 2
			prm.Cfg.Lineitem /= 2
			prm.Cfg.TopN /= 2
			prm.Grant = 4 << 20
		}
		r, err := RunHashSort(1, d, prm)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		t.Logf("%v: lat=%v joinSpill=%v sortSpill=%v wrote=%dMB read=%dMB",
			d, r.Latency, r.JoinSpilled, r.SortSpilled, r.TempDBWrote>>20, r.TempDBRead>>20)
	}
}
