package exp

import (
	"fmt"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/core"
	"remotedb/internal/engine"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/page"
	"remotedb/internal/engine/prime"
	"remotedb/internal/hw/nic"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
	"remotedb/internal/workload"
)

// Fig12Point is one x-position of Figure 12.
type Fig12Point struct {
	BPExtBytes int64
	Servers    int
	Throughput float64
	MeanLat    time.Duration
}

// Fig12Params tunes the sweep geometry (scaled down by -short / -quick).
type Fig12Params struct {
	SizesMB []int64 // BPExt sizes swept
	Rows    int
	Measure time.Duration
}

func DefaultFig12Params() Fig12Params {
	return Fig12Params{
		SizesMB: []int64{32, 64, 96, 128, 144},
		Rows:    500000,
		Measure: 700 * time.Millisecond,
	}
}

// RunFig12BPExtSize reproduces Figure 12: read-only RangeScan throughput
// and latency as the BPExt grows, with the remote memory on one server
// (multi=false) or spread over several (multi=true, one more server per
// 16 MB as in the paper's 16 GB increments).
func RunFig12BPExtSize(seed int64, multi bool, fprm Fig12Params) ([]Fig12Point, error) {
	var out []Fig12Point
	for _, mb := range fprm.SizesMB {
		ext := mb << 20
		servers := 1
		if multi {
			servers = int(ext / (16 << 20))
			if servers < 1 {
				servers = 1
			}
		}
		prm := DefaultRangeScanParams()
		prm.BPExtBytes = ext
		prm.RemoteServers = servers
		prm.Rows = fprm.Rows
		prm.Measure = fprm.Measure
		r, err := RunRangeScan(seed, DesignCustom, prm)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig12Point{
			BPExtBytes: ext,
			Servers:    servers,
			Throughput: r.Throughput,
			MeanLat:    r.MeanLat,
		})
	}
	return out, nil
}

// Fig13Result is the remote-server impact experiment.
type Fig13Result struct {
	Mode       string // "Default", "RDMA", "TCP"
	Throughput float64
	MeanLat    time.Duration
	P99Lat     time.Duration
}

// Fig13Params tunes SB's workload and SA's traffic geometry.
type Fig13Params struct {
	SBRows    int
	SBClients int
	Warmup    time.Duration
	Measure   time.Duration
	Traffic   time.Duration // how long SA's remote I/O runs (0 = Warmup+Measure)
}

func DefaultFig13Params() Fig13Params {
	return Fig13Params{
		SBRows:    100000,
		SBClients: 80,
		Warmup:    500 * time.Millisecond,
		Measure:   2 * time.Second,
	}
}

// RunFig13RemoteImpact reproduces Figure 13: server SB runs a CPU-bound
// read-only RangeScan from its own memory while server SA's BPExt
// traffic lands on SB's spare memory via RDMA or TCP; reported is SB's
// workload.
func RunFig13RemoteImpact(seed int64, prm Fig13Params) ([]Fig13Result, error) {
	if prm.Traffic == 0 {
		prm.Traffic = prm.Warmup + prm.Measure
	}
	var out []Fig13Result
	for _, mode := range []string{"Default", "RDMA", "TCP"} {
		mode := mode
		res := Fig13Result{Mode: mode}
		err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
			k := p.Kernel()
			// SB: large memory, the whole dataset cached, long scans =>
			// CPU-bound (the paper sets range=10000 and 128 GB memory).
			sb := cluster.NewServer(k, "SB", serverConfig(20))
			sbEng, err := engine.New(p, sb, engine.Files{
				Data: vfs.NewDeviceFile("data", sb.HDD),
				Log:  vfs.NewDeviceFile("log", sb.HDD),
				Temp: vfs.NewDeviceFile("temp", sb.SSD),
			}, engine.DefaultConfig(16384)) // 128 MB pool
			if err != nil {
				return err
			}
			sbCfg := workload.DefaultRangeScan()
			sbCfg.Rows = prm.SBRows
			sbCfg.Range = 10000
			sbCfg.Clients = prm.SBClients
			sbCfg.QueryCPU = 2 * time.Millisecond
			sbW, err := workload.NewRangeScan(p, sbEng, sbCfg)
			if err != nil {
				return err
			}

			// SA: a DB server whose BPExt lives on SB's memory.
			if mode != "Default" {
				store := metastore.New(k, 10*time.Microsecond)
				b := broker.New(p, store, broker.DefaultConfig())
				if _, err := b.AddProxy(p, sb, 8<<20, 20); err != nil {
					return err
				}
				sa := cluster.NewServer(k, "SA", serverConfig(20))
				ccfg := rmem.DefaultClientConfig()
				proto := nic.ProtoRDMA
				if mode == "TCP" {
					proto = nic.ProtoSMB
					ccfg.Mode = rmem.AccessAsync
				}
				client := rmem.NewClient(p, sa, ccfg)
				fscfg := core.DefaultConfig()
				fscfg.Protocol = proto
				fs := core.NewFS(p, b, client, fscfg)
				f, err := fs.Create(p, "sa-bpext", 128<<20)
				if err != nil {
					return err
				}
				if err := f.OpenConn(p); err != nil {
					return err
				}
				// SA's BPExt traffic: drive the paper's measured access
				// rate against SB's memory for the whole run.
				k.Go("sa-traffic", func(tp *sim.Proc) {
					stop := tp.Now() + prm.Traffic
					wg := sim.NewWaitGroup(k)
					wg.Add(20)
					for i := 0; i < 20; i++ {
						k.Go("sa-io", func(ip *sim.Proc) {
							defer wg.Done()
							buf := make([]byte, 8192)
							for ip.Now() < stop {
								off := ip.Rand().Int63n((128<<20)/8192) * 8192
								if err := f.ReadAt(ip, buf, off); err != nil {
									return
								}
							}
						})
					}
					wg.Wait(tp)
				})
			}

			r := sbW.Run(p, prm.Warmup, prm.Measure)
			res.Throughput = r.Throughput()
			res.MeanLat = r.Latency.Mean()
			res.P99Lat = r.Latency.P99()
			sbEng.Shutdown()
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig16Result carries the priming experiment.
type Fig16Result struct {
	BPBytes       int64
	WarmupTime    time.Duration // time for the workload to warm the pool
	SerializeTime time.Duration
	TransferTime  time.Duration
	PrimeTime     time.Duration // serialize + transfer + install
	ColdP95       time.Duration // scan p95 starting cold
	PrimedP95     time.Duration // scan p95 after priming
	PagesPrimed   int
}

// Fig16Params tunes the priming experiment geometry.
type Fig16Params struct {
	BPSizesMB []int64
	Rows      int
	Clients   int
}

func DefaultFig16Params() Fig16Params {
	return Fig16Params{BPSizesMB: []int64{10, 15, 20, 25}, Rows: 250000, Clients: 20}
}

// RunFig16Priming reproduces Figure 16: the cost of proactively priming
// a new primary's buffer pool versus warming it through the workload,
// and the tail-latency effect, for several buffer-pool sizes. Warm-up
// time is measured as the time for a cold instance's throughput to
// plateau (two consecutive windows within 5%), the operational notion
// behind Figure 16a.
func RunFig16Priming(seed int64, prm Fig16Params) ([]Fig16Result, error) {
	if len(prm.BPSizesMB) == 0 {
		prm.BPSizesMB = DefaultFig16Params().BPSizesMB
	}
	var out []Fig16Result
	for _, mb := range prm.BPSizesMB {
		res := Fig16Result{BPBytes: mb << 20}
		err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
			k := p.Kernel()
			frames := int((mb << 20) / page.Size)
			hot := &workload.Hotspot{HotFrac: 0.25, HotAccess: 0.99}

			mkEngine := func(name string) (*cluster.Server, *engine.Engine, error) {
				s := cluster.NewServer(k, name, serverConfig(20))
				cfg := engine.DefaultConfig(frames)
				// Figure 16 measures how a cold pool penalizes the workload
				// until primed; scan readahead would mask exactly that
				// penalty, and GDSF holds the hotspot so tightly that the
				// "cold" run barely looks cold — so these engines run the
				// paper's configuration: scalar read path, clock sweep.
				cfg.NoBatchedIO = true
				cfg.Eviction = buffer.PolicyClock
				eng, err := engine.New(p, s, engine.Files{
					Data: vfs.NewDeviceFile("data", s.HDD),
					Log:  vfs.NewDeviceFile("log", s.HDD),
					Temp: vfs.NewDeviceFile("temp", s.SSD),
				}, cfg)
				return s, eng, err
			}
			wcfg := workload.DefaultRangeScan()
			wcfg.Rows = prm.Rows // ~60 MB database at default (Section 6.5's ~100 GB, scaled)
			wcfg.Range = 2000
			wcfg.Clients = prm.Clients
			wcfg.Hotspot = hot
			wcfg.QueryCPU = 200 * time.Microsecond

			// warmUp drives the workload in windows until throughput
			// plateaus; returns the elapsed time.
			warmUp := func(w *workload.RangeScan) time.Duration {
				start := p.Now()
				var prev float64
				stable := 0
				for p.Now()-start < 45*time.Second {
					r := w.Run(p, 0, 250*time.Millisecond)
					thr := r.Throughput()
					if prev > 0 && thr < prev*1.08 && thr > prev*0.92 {
						stable++
						if stable >= 2 {
							break
						}
					} else {
						stable = 0
					}
					prev = thr
				}
				return p.Now() - start
			}

			// S1: the old primary. Warm it through the workload and
			// record how long that takes (Figure 16a's "workload" bar).
			s1, eng1, err := mkEngine("S1")
			if err != nil {
				return err
			}
			w1, err := workload.NewRangeScan(p, eng1, wcfg)
			if err != nil {
				return err
			}
			res.WarmupTime = warmUp(w1)

			// S2: a cold new primary (its pool holds the table tail from
			// loading, useless for the hotspot). Measure cold tail latency.
			_, eng2, err := mkEngine("S2")
			if err != nil {
				return err
			}
			w2, err := workload.NewRangeScan(p, eng2, wcfg)
			if err != nil {
				return err
			}
			// Tail latency during the warm-up phase (the paper measures
			// the cold scan latencies while the pool warms, Figure 16b).
			cold := w2.Run(p, 0, 150*time.Millisecond)
			res.ColdP95 = cold.Latency.P95()

			// S3: a cold instance primed from S1 over RDMA.
			s3, eng3, err := mkEngine("S3")
			if err != nil {
				return err
			}
			w3, err := workload.NewRangeScan(p, eng3, wcfg)
			if err != nil {
				return err
			}
			st, err := prime.Prime(p, s1, s3, eng1.BP, eng3.BP)
			if err != nil {
				return err
			}
			res.SerializeTime = st.SerializeTime
			res.TransferTime = st.TransferTime
			res.PrimeTime = st.Total()
			res.PagesPrimed = st.Pages
			primed := w3.Run(p, 0, 150*time.Millisecond)
			res.PrimedP95 = primed.Latency.P95()
			eng1.Shutdown()
			eng2.Shutdown()
			eng3.Shutdown()
			_ = s3
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig24Point is one x-position of Figure 24 (local-memory sweep).
type Fig24Point struct {
	LocalMemBytes int64
	Design        Design
	Throughput    float64
	MeanLat       time.Duration
}

// Fig24Params tunes the local-memory sweep.
type Fig24Params struct {
	MemsMB  []int64
	Measure time.Duration
}

func DefaultFig24Params() Fig24Params {
	return Fig24Params{MemsMB: []int64{16, 32, 64, 96, 128}, Measure: 700 * time.Millisecond}
}

// RunFig24LocalMemorySweep reproduces Figure 24: Custom vs HDD+SSD as
// local memory grows from 16 MB to 128 MB (paper: GB).
func RunFig24LocalMemorySweep(seed int64, fprm Fig24Params) ([]Fig24Point, error) {
	var out []Fig24Point
	for _, mb := range fprm.MemsMB {
		for _, d := range []Design{DesignHDDSSD, DesignCustom} {
			prm := DefaultRangeScanParams()
			prm.LocalMemBytes = mb << 20
			prm.Measure = fprm.Measure
			r, err := RunRangeScan(seed, d, prm)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig24Point{
				LocalMemBytes: mb << 20,
				Design:        d,
				Throughput:    r.Throughput,
				MeanLat:       r.MeanLat,
			})
		}
	}
	return out, nil
}

// Fig25Point is one x-position of Figure 25.
type Fig25Point struct {
	DBServers  int
	Throughput float64 // aggregate queries/sec
	MeanLat    time.Duration
}

// Fig25Params tunes the multi-DB aggregate experiment.
type Fig25Params struct {
	DBCounts []int
	Rows     int
	Clients  int
	Warmup   time.Duration
	Measure  time.Duration
}

func DefaultFig25Params() Fig25Params {
	return Fig25Params{
		DBCounts: []int{1, 2, 4, 8},
		Rows:     125000,
		Clients:  40,
		Warmup:   300 * time.Millisecond,
		Measure:  time.Second,
	}
}

// RunFig25MultiDBRangeScan reproduces Figure 25: 1..8 database servers
// each running RangeScan with its BPExt on one shared memory server.
func RunFig25MultiDBRangeScan(seed int64, prm Fig25Params) ([]Fig25Point, error) {
	var out []Fig25Point
	for _, n := range prm.DBCounts {
		pt := Fig25Point{DBServers: n}
		err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
			k := p.Kernel()
			store := metastore.New(k, 10*time.Microsecond)
			b := broker.New(p, store, broker.DefaultConfig())
			mem := cluster.NewServer(k, "mem1", serverConfig(20))
			// 8 DBs x 30 MB each (the paper's smaller database).
			if _, err := b.AddProxy(p, mem, 8<<20, 40); err != nil {
				return err
			}
			var agg int64
			var latSum time.Duration
			var latN int64
			wg := sim.NewWaitGroup(k)
			wg.Add(n)
			for i := 0; i < n; i++ {
				db := cluster.NewServer(k, fmt.Sprintf("db%d", i+1), serverConfig(20))
				client := rmem.NewClient(p, db, rmem.DefaultClientConfig())
				fs := core.NewFS(p, b, client, core.DefaultConfig())
				ext, err := fs.Create(p, fmt.Sprintf("bpext-%d", i), 30<<20)
				if err != nil {
					return err
				}
				if err := ext.OpenConn(p); err != nil {
					return err
				}
				cfg := engine.DefaultConfig(896) // ~7 MB local
				cfg.BPExtSlots = int((30 << 20) / page.Size)
				eng, err := engine.New(p, db, engine.Files{
					Data:  vfs.NewDeviceFile("data", db.HDD),
					Log:   vfs.NewDeviceFile("log", db.HDD),
					Temp:  vfs.NewDeviceFile("temp", db.SSD),
					BPExt: ext,
				}, cfg)
				if err != nil {
					return err
				}
				wcfg := workload.DefaultRangeScan()
				wcfg.Rows = prm.Rows
				wcfg.Clients = prm.Clients
				w, err := workload.NewRangeScan(p, eng, wcfg)
				if err != nil {
					return err
				}
				k.Go("dbrun", func(dp *sim.Proc) {
					defer wg.Done()
					r := w.Run(dp, prm.Warmup, prm.Measure)
					agg += r.Queries
					latSum += time.Duration(r.Latency.Mean().Nanoseconds() * r.Queries)
					latN += r.Queries
					eng.Shutdown()
				})
			}
			wg.Wait(p)
			pt.Throughput = float64(agg) / prm.Measure.Seconds()
			if latN > 0 {
				pt.MeanLat = latSum / time.Duration(latN)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
