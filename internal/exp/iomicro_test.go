package exp

import (
	"testing"
	"time"
)

// find returns the row for a config+pattern.
func find(t *testing.T, rows []IORow, config, pattern string) IORow {
	t.Helper()
	for _, r := range rows {
		if r.Config == config && r.Pattern == pattern {
			return r
		}
	}
	t.Fatalf("no row for %s/%s", config, pattern)
	return IORow{}
}

func TestIOMicroShapes(t *testing.T) {
	res, err := RunIOMicro(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(res.Rows))
	}
	// Figure 3 orderings: random throughput Custom > SMBDirect > SMB >
	// SSD > HDD(20) > HDD(8) > HDD(4).
	rnd := func(c string) float64 { return find(t, res.Rows, c, "8K Random").BytesPerSec }
	order := []string{"Custom", "SMBDirect+RamDrive", "SMB+RamDrive", "SSD", "HDD(20)", "HDD(8)", "HDD(4)"}
	for i := 1; i < len(order); i++ {
		if !(rnd(order[i-1]) > rnd(order[i])) {
			t.Errorf("random ordering violated: %s (%.3g) <= %s (%.3g)",
				order[i-1], rnd(order[i-1]), order[i], rnd(order[i]))
		}
	}
	// Sequential: remote designs beat HDD(20) which beats SSD (RAID-0
	// sequential outruns the SSD — the paper's observation).
	seq := func(c string) float64 { return find(t, res.Rows, c, "512K Sequential").BytesPerSec }
	if !(seq("Custom") > seq("HDD(20)") && seq("HDD(20)") > seq("SSD")) {
		t.Errorf("sequential ordering violated: custom=%.3g hdd20=%.3g ssd=%.3g",
			seq("Custom"), seq("HDD(20)"), seq("SSD"))
	}
	// Figure 4: Custom random latency is tens of microseconds; HDD is
	// milliseconds.
	lat := find(t, res.Rows, "Custom", "8K Random").Latency
	if lat > 100*time.Microsecond {
		t.Errorf("custom random latency = %v", lat)
	}
	if find(t, res.Rows, "HDD(20)", "8K Random").Latency < time.Millisecond {
		t.Error("hdd random latency should be milliseconds")
	}
}

func TestFig05ThroughputIndependentOfServerCount(t *testing.T) {
	pts, err := RunFig05MultiMemoryServers(1)
	if err != nil {
		t.Fatal(err)
	}
	base := pts[0].RandomBPS
	for _, pt := range pts {
		if pt.RandomBPS < base*0.85 || pt.RandomBPS > base*1.15 {
			t.Errorf("%d servers: random bps %.3g deviates from %.3g", pt.Servers, pt.RandomBPS, base)
		}
		if pt.SeqBPS < pts[0].SeqBPS*0.85 {
			t.Errorf("%d servers: seq bps %.3g dropped", pt.Servers, pt.SeqBPS)
		}
	}
}

func TestFig06SaturationBehaviour(t *testing.T) {
	pts, err := RunFig06MultiDBServers(1)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate throughput grows with DB count until the memory server's
	// NIC saturates; latency rises after saturation.
	if !(pts[1].RandomBPS > pts[0].RandomBPS*1.5) {
		t.Errorf("2 DBs should nearly double throughput: %.3g vs %.3g", pts[1].RandomBPS, pts[0].RandomBPS)
	}
	last := pts[len(pts)-1]
	prev := pts[len(pts)-2]
	if last.RandomBPS > prev.RandomBPS*1.35 {
		t.Errorf("8 DBs should be near saturation: %.3g vs %.3g", last.RandomBPS, prev.RandomBPS)
	}
	if !(last.RandomLat > pts[0].RandomLat*2) {
		t.Errorf("latency should rise under saturation: %v vs %v", last.RandomLat, pts[0].RandomLat)
	}
}
