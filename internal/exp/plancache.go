package exp

import (
	"fmt"
	"time"

	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/plan"
	"remotedb/internal/engine/row"
	"remotedb/internal/sim"
)

// PlanCacheParams sizes the plan-cache experiment: a stream of
// identically-shaped small range-aggregation queries whose PK bounds
// shift every repetition (the prepared-statement pattern).
type PlanCacheParams struct {
	SF   float64
	Reps int
	Span int64 // PK rows touched per query
}

// DefaultPlanCacheParams uses a small database so that optimization
// time is visible next to execution time, as it is for short OLTP-ish
// reporting queries.
func DefaultPlanCacheParams() PlanCacheParams {
	return PlanCacheParams{SF: 0.02, Reps: 200, Span: 200}
}

// PlanCacheResult compares the cached and uncached planner on the same
// query stream.
type PlanCacheResult struct {
	CachedTime   time.Duration // whole stream, plan cache on
	UncachedTime time.Duration // whole stream, plan cache disabled
	ColdLat      time.Duration // first query (compulsory miss)
	WarmLat      time.Duration // mean of the remaining queries, cache on
	Hits, Misses int64
	Speedup      float64 // UncachedTime / CachedTime
}

// RunPlanCache measures how much of a repeated small query's latency is
// optimization, by running the same parameterized query stream through
// a caching and a non-caching planner. Bounds differ per repetition;
// the plan signature does not, so the cached planner optimizes once.
func RunPlanCache(seed int64, prm PlanCacheParams) (*PlanCacheResult, error) {
	out := &PlanCacheResult{}
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		bed, db, err := newTPCHBed(p, DesignCustom, TPCHParams{
			SF:            prm.SF,
			LocalMemBytes: 8 << 20,
			BPExtBytes:    64 << 20,
			TempBytes:     16 << 20,
			Grant:         2 << 20,
			Streams:       1,
		})
		if err != nil {
			return err
		}
		orders := db.Orders.Clustered.Entries
		if orders <= prm.Span+1 {
			return fmt.Errorf("plancache: only %d orders, need > %d", orders, prm.Span)
		}
		query := func(i int) *plan.Builder {
			start := (int64(i)*prm.Span)%(orders-prm.Span) + 1
			return plan.ScanRange(db.Orders,
				row.EncodeKey(nil, start), row.EncodeKey(nil, start+prm.Span)).
				GroupBy([]string{"orderpriority"},
					exec.Agg{Fn: exec.AggSum, Col: "totalprice", As: "revenue"})
		}
		stream := func(pl *plan.Planner) (total, cold, warm time.Duration, err error) {
			t0 := p.Now()
			for i := 0; i < prm.Reps; i++ {
				q0 := p.Now()
				if _, err = pl.Run(bed.Eng.NewCtx(p), query(i)); err != nil {
					return
				}
				if i == 0 {
					cold = p.Now() - q0
				}
			}
			total = p.Now() - t0
			if prm.Reps > 1 {
				warm = (total - cold) / time.Duration(prm.Reps-1)
			}
			return
		}
		// Warm the buffer pool so both passes fault the same (few) pages.
		if _, _, _, err := stream(plan.NewPlanner(bed.Eng.Cost, -1)); err != nil {
			return err
		}
		uncached := plan.NewPlanner(bed.Eng.Cost, -1)
		if out.UncachedTime, _, _, err = stream(uncached); err != nil {
			return err
		}
		cached := bed.Eng.Planner
		if out.CachedTime, out.ColdLat, out.WarmLat, err = stream(cached); err != nil {
			return err
		}
		out.Hits, out.Misses = cached.Hits, cached.Misses
		if out.CachedTime > 0 {
			out.Speedup = float64(out.UncachedTime) / float64(out.CachedTime)
		}
		bed.Close(p)
		return nil
	})
	return out, err
}
