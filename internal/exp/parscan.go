package exp

import (
	"time"

	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/plan"
	"remotedb/internal/sim"
)

// ParScanParams sizes the parallel-scan experiment: local memory is
// kept far below the table size and the BPExt far above it, so after a
// warm-up pass almost every page fault is served from remote memory and
// the sweep measures how scan throughput scales with DOP against the
// NIC and the cores.
type ParScanParams struct {
	SF            float64
	LocalMemBytes int64
	BPExtBytes    int64
	DOPs          []int
}

// DefaultParScanParams sweeps DOP 1..16 over the lineitem table.
func DefaultParScanParams() ParScanParams {
	return ParScanParams{
		SF:            0.05,
		LocalMemBytes: 4 << 20,
		BPExtBytes:    96 << 20,
		DOPs:          []int{1, 2, 4, 8, 16},
	}
}

// ParScanPoint is one DOP of the sweep.
type ParScanPoint struct {
	DOP        int
	Elapsed    time.Duration
	RowsPerSec float64
	Speedup    float64 // vs the DOP-1 point
}

// RunParScan runs a full-table count aggregation over lineitem at each
// DOP. The planner lowers it to a parallel scan + partial aggregation
// (ParallelAgg) partitioned on the clustered B-tree's root separators.
func RunParScan(seed int64, prm ParScanParams) ([]ParScanPoint, error) {
	var out []ParScanPoint
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		bed, db, err := newTPCHBed(p, DesignCustom, TPCHParams{
			SF:            prm.SF,
			LocalMemBytes: prm.LocalMemBytes,
			BPExtBytes:    prm.BPExtBytes,
			TempBytes:     16 << 20,
			Grant:         8 << 20,
			Streams:       1,
		})
		if err != nil {
			return err
		}
		rows := db.Lineitem.Clustered.Entries
		query := func() *plan.Builder {
			return plan.Scan(db.Lineitem).
				GroupBy(nil, exec.Agg{Fn: exec.AggCount, As: "n"})
		}
		// Warm-up: populate the BPExt so the sweep reads remote memory,
		// not spindles.
		if _, err := db.Planner.Run(bed.Eng.NewCtx(p), query()); err != nil {
			return err
		}
		for _, dop := range prm.DOPs {
			ctx := bed.Eng.NewCtx(p)
			ctx.DOP = dop
			t0 := p.Now()
			if _, err := db.Planner.Run(ctx, query()); err != nil {
				return err
			}
			pt := ParScanPoint{DOP: dop, Elapsed: p.Now() - t0}
			pt.RowsPerSec = float64(rows) / pt.Elapsed.Seconds()
			if len(out) > 0 && pt.Elapsed > 0 {
				pt.Speedup = float64(out[0].Elapsed) / float64(pt.Elapsed)
			} else {
				pt.Speedup = 1
			}
			out = append(out, pt)
		}
		bed.Close(p)
		return nil
	})
	return out, err
}
