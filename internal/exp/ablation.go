package exp

import (
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/core"
	"remotedb/internal/hw/nic"
	"remotedb/internal/metrics"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
)

// AblationResult compares one Table 1 design choice against its
// rejected alternative on the 8 KiB random-read pattern.
type AblationResult struct {
	Choice      string
	Chosen      string
	Alternative string
	ChosenLat   time.Duration
	AltLat      time.Duration
	ChosenBPS   float64
	AltBPS      float64
}

// Factor returns alternative/chosen latency.
func (r AblationResult) Factor() float64 { return float64(r.AltLat) / float64(r.ChosenLat) }

// ablationDrive measures 8K random reads with the given client config.
func ablationDrive(seed int64, ccfg rmem.ClientConfig, threads int) (time.Duration, float64, error) {
	var lat time.Duration
	var bps float64
	err := RunInSim(seed, time.Hour, func(p *sim.Proc) error {
		k := p.Kernel()
		db := cluster.NewServer(k, "db1", serverConfig(20))
		mem := cluster.NewServer(k, "mem1", serverConfig(20))
		store := metastore.New(k, 10*time.Microsecond)
		b := broker.New(p, store, broker.DefaultConfig())
		if _, err := b.AddProxy(p, mem, 8<<20, 20); err != nil {
			return err
		}
		client := rmem.NewClient(p, db, ccfg)
		fsCfg := core.DefaultConfig()
		fsCfg.Protocol = nic.ProtoRDMA
		fs := core.NewFS(p, b, client, fsCfg)
		f, err := fs.Create(p, "ab", 128<<20)
		if err != nil {
			return err
		}
		if err := f.OpenConn(p); err != nil {
			return err
		}
		hist := metrics.NewHistogram()
		var bytes int64
		dur := 300 * time.Millisecond
		end := p.Now() + dur
		wg := sim.NewWaitGroup(k)
		wg.Add(threads)
		for i := 0; i < threads; i++ {
			k.Go("io", func(wp *sim.Proc) {
				defer wg.Done()
				buf := make([]byte, 8192)
				for wp.Now() < end {
					off := wp.Rand().Int63n((128<<20)/8192) * 8192
					t0 := wp.Now()
					if err := f.ReadAt(wp, buf, off); err != nil {
						return
					}
					hist.Observe(wp.Now() - t0)
					bytes += 8192
				}
			})
		}
		wg.Wait(p)
		lat = hist.Mean()
		bps = float64(bytes) / dur.Seconds()
		return nil
	})
	return lat, bps, err
}

// RunAblationSyncVsAsync quantifies Section 4.1.3: synchronous spinning
// completion vs asynchronous I/O with context switches. Measured at low
// concurrency — in a saturated closed loop the per-op penalty hides
// inside the queueing delay (Little's law), which is also why the paper
// only sees the async cost clearly once the CPU is loaded (Figure 11c).
func RunAblationSyncVsAsync(seed int64) (*AblationResult, error) {
	res := &AblationResult{
		Choice:      "completion model (Table 1)",
		Chosen:      "synchronous spin",
		Alternative: "asynchronous I/O",
	}
	cfg := rmem.DefaultClientConfig()
	cfg.Mode = rmem.AccessSync
	var err error
	if res.ChosenLat, res.ChosenBPS, err = ablationDrive(seed, cfg, 2); err != nil {
		return nil, err
	}
	cfg.Mode = rmem.AccessAsync
	if res.AltLat, res.AltBPS, err = ablationDrive(seed, cfg, 2); err != nil {
		return nil, err
	}
	return res, nil
}

// RunAblationRegistration quantifies Section 4.1.4: preregistered
// staging buffers (memcpy ~2 µs/page) vs per-transfer registration
// (~50 µs/page).
func RunAblationRegistration(seed int64) (*AblationResult, error) {
	res := &AblationResult{
		Choice:      "MR registration (Table 1)",
		Chosen:      "preregistered staging",
		Alternative: "on-demand registration",
	}
	cfg := rmem.DefaultClientConfig()
	cfg.Reg = rmem.RegStaging
	var err error
	if res.ChosenLat, res.ChosenBPS, err = ablationDrive(seed, cfg, 2); err != nil {
		return nil, err
	}
	cfg.Reg = rmem.RegOnDemand
	if res.AltLat, res.AltBPS, err = ablationDrive(seed, cfg, 2); err != nil {
		return nil, err
	}
	return res, nil
}

// RunAblationEncryption quantifies Section 7's security future-work:
// AES-CTR encrypting every payload so donors hold only ciphertext.
func RunAblationEncryption(seed int64) (*AblationResult, error) {
	res := &AblationResult{
		Choice:      "payload encryption (Section 7)",
		Chosen:      "plaintext",
		Alternative: "AES-CTR encrypted",
	}
	cfg := rmem.DefaultClientConfig()
	var err error
	if res.ChosenLat, res.ChosenBPS, err = ablationDrive(seed, cfg, 2); err != nil {
		return nil, err
	}
	cfg.Encrypt = true
	cfg.Key = [16]byte{42}
	if res.AltLat, res.AltBPS, err = ablationDrive(seed, cfg, 2); err != nil {
		return nil, err
	}
	return res, nil
}

// RunAblationAdaptive measures the adaptive completion mode (the paper's
// Section 4.1.3 future work): on small transfers it must match sync.
func RunAblationAdaptive(seed int64) (*AblationResult, error) {
	res := &AblationResult{
		Choice:      "adaptive completion (Section 4.1.3 future work)",
		Chosen:      "adaptive",
		Alternative: "always-async",
	}
	cfg := rmem.DefaultClientConfig()
	cfg.Mode = rmem.AccessAdaptive
	var err error
	if res.ChosenLat, res.ChosenBPS, err = ablationDrive(seed, cfg, 2); err != nil {
		return nil, err
	}
	cfg.Mode = rmem.AccessAsync
	if res.AltLat, res.AltBPS, err = ablationDrive(seed, cfg, 2); err != nil {
		return nil, err
	}
	return res, nil
}
