// These tests drive the bed through the public facade (package
// remotedb) and its functional-options constructors — the bare-Config
// entry points they used to call are deprecated.
package exp_test

import (
	"testing"
	"time"

	"remotedb"
	"remotedb/internal/exp"
	"remotedb/internal/workload"
)

// TestRemoteFailureMidWorkload kills the memory server halfway through a
// RangeScan run: the BPExt must disable itself, the workload must keep
// producing correct results from the data file, and throughput must drop
// to the no-extension regime (the paper's best-effort contract, §4.1.5).
func TestRemoteFailureMidWorkload(t *testing.T) {
	rows, clients, window := 200000, 40, 300*time.Millisecond
	if testing.Short() {
		rows, clients, window = 100000, 20, 150*time.Millisecond
	}
	err := remotedb.RunInSim(1, 2*time.Hour, func(p *remotedb.Proc) error {
		bed, err := remotedb.NewTestBed(p, remotedb.DesignCustom,
			remotedb.WithBufferFrames(2048), // 16 MiB local pool
			remotedb.WithBPExtBytes(64<<20))
		if err != nil {
			return err
		}
		wcfg := workload.DefaultRangeScan()
		wcfg.Rows = rows
		wcfg.Clients = clients
		w, err := workload.NewRangeScan(p, bed.Eng, wcfg)
		if err != nil {
			return err
		}
		// Warm, then measure with the extension alive.
		healthy := w.Run(p, window, window)
		if !bed.Eng.BP.ExtensionHealthy() {
			t.Error("extension should be healthy before the failure")
		}

		// Kill every memory server.
		for _, px := range bed.Proxies {
			bed.Broker.FailProxy(px)
		}
		degraded := w.Run(p, window*2/3, window)

		t.Logf("healthy: %.0f q/s (%d errors), degraded: %.0f q/s (%d errors)",
			healthy.Throughput(), healthy.Errors, degraded.Throughput(), degraded.Errors)
		if bed.Eng.BP.ExtensionHealthy() {
			t.Error("extension should be disabled after the remote failure")
		}
		if healthy.Errors != 0 {
			t.Errorf("healthy phase had %d errors", healthy.Errors)
		}
		if degraded.Errors != 0 {
			t.Errorf("degraded phase had %d errors: correctness must not depend on remote memory", degraded.Errors)
		}
		if degraded.Throughput() >= healthy.Throughput() {
			t.Errorf("throughput should degrade without the extension: %.0f -> %.0f",
				healthy.Throughput(), degraded.Throughput())
		}
		if degraded.Queries == 0 {
			t.Error("workload stopped after remote failure")
		}
		bed.Close(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMemoryPressureReclaimsMidWorkload: the donor commits local memory
// mid-run; the broker reclaims MRs (free first, then revoking leases)
// and the workload keeps running.
func TestMemoryPressureReclaimsMidWorkload(t *testing.T) {
	rows, clients, window := 100000, 20, 300*time.Millisecond
	if testing.Short() {
		rows, clients, window = 60000, 10, 150*time.Millisecond
	}
	err := remotedb.RunInSim(1, 2*time.Hour, func(p *remotedb.Proc) error {
		bed, err := remotedb.NewTestBed(p, remotedb.DesignCustom,
			remotedb.WithBufferFrames(2048), // 16 MiB local pool
			remotedb.WithBPExtBytes(64<<20),
			remotedb.WithRemoteServers(1))
		if err != nil {
			return err
		}
		wcfg := workload.DefaultRangeScan()
		wcfg.Rows = rows
		wcfg.Clients = clients
		w, err := workload.NewRangeScan(p, bed.Eng, wcfg)
		if err != nil {
			return err
		}
		w.Run(p, 0, window)

		// The donor suddenly needs almost everything.
		donor := bed.Mems[0]
		need := donor.MemoryFree() + donor.MemoryBrokered() - 8<<20
		if err := donor.CommitLocal(need); err != nil {
			t.Errorf("donor's local demand must win: %v", err)
		}
		if bed.Broker.Revocations() == 0 {
			t.Error("pressure should have revoked leases")
		}
		after := w.Run(p, 0, window)
		if after.Errors != 0 {
			t.Errorf("%d errors after reclamation", after.Errors)
		}
		if after.Queries == 0 {
			t.Error("workload stopped after reclamation")
		}
		bed.Close(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeterminismAcrossRuns: the same seed must reproduce the same
// throughput bit for bit (the repository's headline determinism claim).
func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() float64 {
		prm := exp.DefaultRangeScanParams()
		prm.Rows = 100000
		prm.Clients = 20
		prm.Measure = 300 * time.Millisecond
		if testing.Short() {
			prm.Rows = 60000
			prm.Measure = 150 * time.Millisecond
		}
		r, err := exp.RunRangeScan(7, exp.DesignCustom, prm)
		if err != nil {
			t.Fatal(err)
		}
		return r.Throughput
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different results: %.4f vs %.4f", a, b)
	}
}

// TestSeedChangesResults: different seeds must actually change the
// random streams (guards against accidentally fixed RNGs).
func TestSeedChangesResults(t *testing.T) {
	run := func(seed int64) float64 {
		prm := exp.DefaultRangeScanParams()
		// Larger than local memory so cache misses (and thus timing)
		// depend on the random key stream.
		prm.Rows = 300000
		prm.Clients = 20
		prm.Measure = 300 * time.Millisecond
		if testing.Short() {
			prm.Rows = 200000
			prm.Measure = 150 * time.Millisecond
		}
		r, err := exp.RunRangeScan(seed, exp.DesignCustom, prm)
		if err != nil {
			t.Fatal(err)
		}
		return r.Throughput
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical throughput")
	}
}
