package exp

import (
	"testing"
	"time"
)

func TestChaosSmoke(t *testing.T) {
	prm := QuickChaosParams()
	if testing.Short() {
		// Half the bed and the windows: every scenario still crosses its
		// assertion thresholds (hedging needs only a handful of slow
		// stripes, the storm needs one shed wave), in a fraction of the
		// closed-loop event volume.
		prm.Holders = 24
		prm.Donors = 8
		prm.Measure = 30 * time.Millisecond
		prm.WarmReads = 100
		prm.ReadsPerHolder = 200
		prm.FlapCycles = 2
	}
	r, err := RunChaos(1, prm)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hedge: cut=%.1fx rate=%.3f (hedged=%d wins=%d)", r.HedgeCut, r.HedgeRate, r.Hedged, r.HedgeWins)
	t.Logf("storm: healthy p99=%v storm p99=%v recovered %.0f B/s of %.0f B/s (shed %d)",
		r.Healthy.P99, r.Storm.P99, r.Recovered.BytesPerSec, r.Healthy.BytesPerSec, r.Shed)
	t.Logf("flap: brownouts=%d quarantines=%d probes=%d recoveries=%d reports=%d",
		r.FlapBrownouts, r.FlapQuarantines, r.FlapProbes, r.FlapRecoveries, r.HealthReports)
}
