// Pushdown experiment: donor-side operator pushdown vs fetch-all over
// one pushable remote segment, swept across predicate selectivities.
// At low selectivity only the qualifying bytes cross the wire and the
// donors' tight evaluator replaces the engine's per-row decode path,
// so pushdown wins by roughly the CPU/bandwidth ratio; as the
// predicate stops filtering, the donor pass becomes pure overhead and
// the optimizer must cross over to fetch-all. A final lane pokes
// corruption into donor memory and revokes a stripe mid-query: the
// per-block fallback ladder must keep the pushed scan correct with
// zero engine-visible errors.
package exp

import (
	"fmt"
	"math"
	"time"

	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/opt"
	"remotedb/internal/engine/plan"
	"remotedb/internal/engine/row"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
)

// PushdownParams sizes the experiment. The value column is uniform over
// [0, 1000), so a selectivity s maps to the predicate v < s*1000. Rows
// carry a ~200-byte payload so the sweep is wire-bound like a real
// analytic scan, not dominated by per-record fixed costs.
type PushdownParams struct {
	Rows          int
	Selectivities []float64
	DonorPrice    float64
}

// pushdownPad is the payload carried by every row.
const pushdownPad = 192

// DefaultPushdownParams sweeps the issue's four regimes.
func DefaultPushdownParams() PushdownParams {
	return PushdownParams{
		Rows:          120000,
		Selectivities: []float64{0.001, 0.01, 0.1, 1.0},
	}
}

// PushdownPoint is one selectivity of the sweep.
type PushdownPoint struct {
	Selectivity float64
	Matched     int64
	Push        time.Duration // forced donor-side evaluation
	Fetch       time.Duration // forced fetch-all (client-side evaluation)
	Chosen      string        // placement the optimizer picked
	ChosenTime  time.Duration
	Speedup     float64 // Fetch / Push
	WithinBest  float64 // ChosenTime / min(Push, Fetch)
}

// PushdownResult is the full sweep plus the corruption/revocation lane.
type PushdownResult struct {
	Rows         int64
	SegmentBytes int64
	Crossover    float64 // model-predicted push→fetch-all crossover selectivity
	Points       []PushdownPoint

	// Corruption/revocation lane: a pushed scan through bit flips, a
	// torn write, and a revoked stripe.
	FaultRows      int64 // rows returned (must equal the clean count)
	FaultErrors    int64 // engine-visible errors (must be 0)
	ExecFallbacks  int64 // partitions degraded to fetch-all in the executor
	BlockFallbacks int64 // per-block donor→client fallbacks in core
	Corruptions    int64 // blocks that failed donor-side verification
	PushReads      int64 // pushed range reads issued by core
}

// pushdownCols is the segment's field layout: k (PK), v (uniform
// 0..999), total, pad.
var pushdownCols = []rmem.FieldKind{
	rmem.FieldInt64, rmem.FieldInt64, rmem.FieldFloat64, rmem.FieldBytes,
}

func pushdownQuery(cut int64) *rmem.PushQuery {
	return &rmem.PushQuery{
		Cols:  pushdownCols,
		Preds: []rmem.PushLeaf{{Col: 1, Op: rmem.PushLT, Int: cut}},
	}
}

// RunPushdown measures forced push, forced fetch-all, and the
// optimizer's choice at each selectivity, then drives a pushed scan
// through a corruption + revocation storm.
func RunPushdown(seed int64, prm PushdownParams) (*PushdownResult, error) {
	res := &PushdownResult{}
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		cfg := DefaultBedConfig(DesignCustom)
		cfg.Seed = seed
		cfg.LocalMemBytes = 64 << 20
		cfg.BPExtBytes = 0
		cfg.TempBytes = 8 << 20
		cfg.RemoteServers = 3
		cfg.Integrity = true // pushed reads verify donor-side; framing defines the chunk
		cfg.Replication = 2  // corrupt/revoked stripes repair from the replica
		cfg.Pushdown = true
		cfg.DonorPrice = prm.DonorPrice
		bed, err := NewBed(p, cfg)
		if err != nil {
			return err
		}
		eng := bed.Eng
		eng.DOP = 8 // analytic scan: spread donor eval wide

		sch := row.NewSchema(
			row.Column{Name: "k", Type: row.Int64},
			row.Column{Name: "v", Type: row.Int64},
			row.Column{Name: "total", Type: row.Float64},
			row.Column{Name: "pad", Type: row.Bytes},
		)
		tbl, err := eng.Catalog.CreateTable(p, "pushtab", sch, "k")
		if err != nil {
			return err
		}
		pad := make([]byte, pushdownPad)
		var rows []row.Tuple
		for i := 0; i < prm.Rows; i++ {
			rows = append(rows, row.Tuple{int64(i), int64(i % 1000), float64(i), pad})
		}
		if err := tbl.BulkLoad(p, rows); err != nil {
			return err
		}

		// Mirror the table into a framed remote segment. Size the file
		// generously: records are ~230 bytes framed into 4K chunks.
		segFile, err := bed.FS.Create(p, "pushseg", int64(prm.Rows)*280+(2<<20))
		if err != nil {
			return err
		}
		if err := segFile.OpenConn(p); err != nil {
			return err
		}
		if err := eng.BuildPushSegment(p, tbl, segFile); err != nil {
			return err
		}
		seg := tbl.Push
		res.Rows = seg.Rows
		res.SegmentBytes = seg.Bytes
		res.Crossover = eng.Cost.PushCrossoverSelectivity(opt.PushScanInputs{
			Rows:       seg.Rows,
			Bytes:      seg.Bytes,
			OutBytes:   seg.Bytes / seg.Rows,
			Leaves:     1,
			DonorPrice: prm.DonorPrice,
			LocalTier:  opt.TierRemote,
			DOP:        eng.DOP,
		})

		timed := func(op exec.Op) (int64, time.Duration, error) {
			ctx := eng.NewCtx(p)
			t0 := p.Now()
			n, err := exec.Run(ctx, op)
			ctx.FlushCPU()
			return n, p.Now() - t0, err
		}

		for _, sel := range prm.Selectivities {
			cut := int64(math.Round(sel * 1000))
			pt := PushdownPoint{Selectivity: sel}

			n, d, err := timed(&exec.PushScan{Table: tbl, Query: pushdownQuery(cut)})
			if err != nil {
				return fmt.Errorf("push arm sel=%g: %w", sel, err)
			}
			pt.Matched, pt.Push = n, d

			n, d, err = timed(&exec.PushScan{Table: tbl, Query: pushdownQuery(cut), FetchAll: true})
			if err != nil {
				return fmt.Errorf("fetch arm sel=%g: %w", sel, err)
			}
			if n != pt.Matched {
				return fmt.Errorf("fetch arm sel=%g returned %d rows, push returned %d", sel, n, pt.Matched)
			}
			pt.Fetch = d

			// The optimizer's choice, lowered through the planner (the
			// WhereCmp hint carries the selectivity).
			ctx := eng.NewCtx(p)
			op, err := eng.Planner.Lower(ctx, plan.Scan(tbl).WhereCmp("v", plan.CmpLT, cut, sel))
			if err != nil {
				return err
			}
			pt.Chosen = "LocalScan"
			if ps, ok := op.(*exec.PushScan); ok {
				pt.Chosen = "PushScan"
				if ps.FetchAll {
					pt.Chosen = "FetchAll"
				}
			}
			t0 := p.Now()
			n, err = exec.Run(ctx, op)
			ctx.FlushCPU()
			if err != nil {
				return fmt.Errorf("chosen arm sel=%g: %w", sel, err)
			}
			if n != pt.Matched {
				return fmt.Errorf("chosen arm sel=%g returned %d rows, want %d", sel, n, pt.Matched)
			}
			pt.ChosenTime = p.Now() - t0

			if pt.Push > 0 {
				pt.Speedup = float64(pt.Fetch) / float64(pt.Push)
			}
			best := pt.Push
			if pt.Fetch < best {
				best = pt.Fetch
			}
			if best > 0 {
				pt.WithinBest = float64(pt.ChosenTime) / float64(best)
			}
			res.Points = append(res.Points, pt)
		}

		// Fault lanes: first silent corruption (bit flips + a torn
		// write on the primary copies), then a primary-lease
		// revocation. They run as separate scans because the revocation
		// watcher restripes the lost copy from the surviving replica —
		// a rebuild that would also scrub away the injected flips
		// before a combined scan could observe them. The donor-side
		// verify must catch every bad frame, the per-block fallback
		// must repair from the replica, and the revoked copy must fail
		// over — all invisible to the engine.
		clean := res.Points[1].Matched // the 1% point's row count
		stormScan := func() int64 {
			op := &exec.PushScan{Table: tbl, Query: pushdownQuery(10)}
			n, _, err := timed(op)
			if err != nil || n != clean {
				res.FaultErrors++
			}
			res.ExecFallbacks += op.Fallbacks
			return n
		}
		blocks0 := bed.FS.PushFallbacks
		now := p.Now()
		bed.InjectFaults([]FaultEvent{
			{At: now + time.Millisecond, Kind: FaultBitFlip, Name: "pushseg", N: 0},
			{At: now + time.Millisecond, Kind: FaultBitFlip, Name: "pushseg", N: 97},
			{At: now + time.Millisecond, Kind: FaultBitFlip, Name: "pushseg", N: 511},
			{At: now + time.Millisecond, Kind: FaultTornWrite, Name: "pushseg", N: 199},
		})
		p.Sleep(2 * time.Millisecond)
		res.FaultRows = stormScan()

		now = p.Now()
		bed.InjectFaults([]FaultEvent{
			{At: now + time.Millisecond, Kind: FaultRevokeFile, Name: "pushseg", N: 1},
		})
		p.Sleep(2 * time.Millisecond)
		if n := stormScan(); n != res.FaultRows {
			res.FaultRows = -1 // lanes disagree; fail the row check loudly
		}
		res.BlockFallbacks = bed.FS.PushFallbacks - blocks0
		res.Corruptions = bed.FS.Corruptions.N
		res.PushReads = bed.FS.PushReads

		bed.Close(p)
		return nil
	})
	return res, err
}
