package exp

import (
	"testing"
	"time"
)

// TestRangeScanSmoke checks one Custom run lands in the paper's
// ballpark: tens of thousands of queries/sec, sub-10ms latency.
func TestRangeScanSmoke(t *testing.T) {
	prm := DefaultRangeScanParams()
	prm.Measure = 500 * time.Millisecond
	if testing.Short() {
		prm.Rows = 250000
		prm.Clients = 40
		prm.Warmup = 250 * time.Millisecond
		prm.Measure = 250 * time.Millisecond
	}
	r, err := RunRangeScan(1, DesignCustom, prm)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("custom: %.0f q/s mean=%v p95=%v extHits=%d diskReads=%d",
		r.Throughput, r.MeanLat, r.P95Lat, r.ExtHits, r.DiskReads)
	if r.Throughput < 20000 {
		t.Errorf("custom throughput = %.0f, want >20K", r.Throughput)
	}
}
