package exp

import (
	"fmt"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/core"
	"remotedb/internal/hw/nic"
	"remotedb/internal/metrics"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
	"remotedb/internal/workload"
)

// IORow is one bar of Figures 3 and 4.
type IORow struct {
	Config      string
	Pattern     string // "8K Random" or "512K Sequential"
	BytesPerSec float64
	Latency     time.Duration
}

// IOMicroResult reproduces Figures 3 and 4.
type IOMicroResult struct {
	Rows []IORow
}

// remoteFile builds a remote-memory file over n memory servers with the
// given protocol, returning it with its bed plumbing alive.
func remoteFile(p *sim.Proc, proto nic.Protocol, servers int, size int64) (vfs.File, []*cluster.Server, *cluster.Server, error) {
	k := p.Kernel()
	db := cluster.NewServer(k, "db1", serverConfig(20))
	store := metastore.New(k, 10*time.Microsecond)
	b := broker.New(p, store, broker.DefaultConfig())
	var mems []*cluster.Server
	mrBytes := 8 << 20
	perServer := (size + int64(servers) - 1) / int64(servers)
	mrs := int((perServer+int64(mrBytes)-1)/int64(mrBytes)) + 1
	for i := 0; i < servers; i++ {
		m := cluster.NewServer(k, fmt.Sprintf("mem%d", i+1), serverConfig(20))
		mems = append(mems, m)
		if _, err := b.AddProxy(p, m, mrBytes, mrs); err != nil {
			return nil, nil, nil, err
		}
	}
	clientCfg := rmem.DefaultClientConfig()
	if proto != nic.ProtoRDMA {
		clientCfg.Mode = rmem.AccessAsync
	}
	client := rmem.NewClient(p, db, clientCfg)
	fsCfg := core.DefaultConfig()
	fsCfg.Protocol = proto
	fs := core.NewFS(p, b, client, fsCfg)
	f, err := fs.Create(p, "io", size)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := f.OpenConn(p); err != nil {
		return nil, nil, nil, err
	}
	return f, mems, db, nil
}

// RunIOMicro reproduces Figures 3 and 4: raw read throughput and latency
// of every storage alternative under SQLIO's two patterns.
func RunIOMicro(seed int64) (*IOMicroResult, error) {
	res := &IOMicroResult{}
	span := int64(256 << 20)

	type target struct {
		name string
		mk   func(p *sim.Proc) (vfs.File, error)
	}
	targets := []target{
		{"HDD(4)", func(p *sim.Proc) (vfs.File, error) {
			s := cluster.NewServer(p.Kernel(), "h4", serverConfig(4))
			return vfs.NewDeviceFile("hdd", s.HDD), nil
		}},
		{"HDD(8)", func(p *sim.Proc) (vfs.File, error) {
			s := cluster.NewServer(p.Kernel(), "h8", serverConfig(8))
			return vfs.NewDeviceFile("hdd", s.HDD), nil
		}},
		{"HDD(20)", func(p *sim.Proc) (vfs.File, error) {
			s := cluster.NewServer(p.Kernel(), "h20", serverConfig(20))
			return vfs.NewDeviceFile("hdd", s.HDD), nil
		}},
		{"SSD", func(p *sim.Proc) (vfs.File, error) {
			s := cluster.NewServer(p.Kernel(), "ssd", serverConfig(20))
			return vfs.NewDeviceFile("ssd", s.SSD), nil
		}},
		{"SMB+RamDrive", func(p *sim.Proc) (vfs.File, error) {
			f, _, _, err := remoteFile(p, nic.ProtoSMB, 1, span)
			return f, err
		}},
		{"SMBDirect+RamDrive", func(p *sim.Proc) (vfs.File, error) {
			f, _, _, err := remoteFile(p, nic.ProtoSMBDirect, 1, span)
			return f, err
		}},
		{"Custom", func(p *sim.Proc) (vfs.File, error) {
			f, _, _, err := remoteFile(p, nic.ProtoRDMA, 1, span)
			return f, err
		}},
	}
	patterns := []struct {
		name string
		cfg  workload.SQLIOConfig
	}{
		{"8K Random", workload.RandomRead8K(span)},
		{"512K Sequential", workload.SequentialRead512K(span)},
	}
	for i := range patterns {
		patterns[i].cfg.Duration = 400 * time.Millisecond
	}
	for _, tg := range targets {
		for _, pat := range patterns {
			tg, pat := tg, pat
			err := RunInSim(seed, time.Hour, func(p *sim.Proc) error {
				f, err := tg.mk(p)
				if err != nil {
					return err
				}
				r := workload.RunSQLIO(p, f, pat.cfg)
				res.Rows = append(res.Rows, IORow{
					Config:      tg.name,
					Pattern:     pat.name,
					BytesPerSec: r.BytesPerSec,
					Latency:     r.Latency.Mean(),
				})
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", tg.name, pat.name, err)
			}
		}
	}
	return res, nil
}

// MultiServerPoint is one x-position of Figures 5 and 6.
type MultiServerPoint struct {
	Servers   int
	RandomBPS float64
	RandomLat time.Duration
	SeqBPS    float64
	SeqLat    time.Duration
}

// RunFig05MultiMemoryServers reproduces Figure 5: one database server
// reading a fixed total of remote memory spread over 1..8 memory
// servers.
func RunFig05MultiMemoryServers(seed int64) ([]MultiServerPoint, error) {
	var out []MultiServerPoint
	span := int64(256 << 20)
	for _, n := range []int{1, 2, 4, 8} {
		pt := MultiServerPoint{Servers: n}
		err := RunInSim(seed, time.Hour, func(p *sim.Proc) error {
			f, _, _, err := remoteFile(p, nic.ProtoRDMA, n, span)
			if err != nil {
				return err
			}
			rndCfg := workload.RandomRead8K(span)
			rndCfg.Duration = 400 * time.Millisecond
			r := workload.RunSQLIO(p, f, rndCfg)
			pt.RandomBPS = r.BytesPerSec
			pt.RandomLat = r.Latency.Mean()
			seqCfg := workload.SequentialRead512K(span)
			seqCfg.Duration = 400 * time.Millisecond
			s := workload.RunSQLIO(p, f, seqCfg)
			pt.SeqBPS = s.BytesPerSec
			pt.SeqLat = s.Latency.Mean()
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// RunFig06MultiDBServers reproduces Figure 6: 1..8 database servers
// reading remote memory on one memory server; aggregate throughput and
// mean latency.
func RunFig06MultiDBServers(seed int64) ([]MultiServerPoint, error) {
	var out []MultiServerPoint
	perDB := int64(32 << 20)
	for _, n := range []int{1, 2, 4, 8} {
		pt := MultiServerPoint{Servers: n}
		err := RunInSim(seed, time.Hour, func(p *sim.Proc) error {
			k := p.Kernel()
			store := metastore.New(k, 10*time.Microsecond)
			b := broker.New(p, store, broker.DefaultConfig())
			mem := cluster.NewServer(k, "mem1", serverConfig(20))
			mrBytes := 8 << 20
			if _, err := b.AddProxy(p, mem, mrBytes, int(perDB*int64(n))/mrBytes+n); err != nil {
				return err
			}
			// Each DB server gets its own file and drives a quarter-rate
			// random pattern so ~4 servers saturate the memory server's
			// NIC, as in the paper.
			hist := metrics.NewHistogram()
			var bytes int64
			dur := 500 * time.Millisecond
			wg := sim.NewWaitGroup(k)
			wg.Add(n)
			for i := 0; i < n; i++ {
				db := cluster.NewServer(k, fmt.Sprintf("db%d", i+1), serverConfig(20))
				client := rmem.NewClient(p, db, rmem.DefaultClientConfig())
				fs := core.NewFS(p, b, client, core.DefaultConfig())
				f, err := fs.Create(p, "io", perDB)
				if err != nil {
					return err
				}
				if err := f.OpenConn(p); err != nil {
					return err
				}
				k.Go("dbdrive", func(dp *sim.Proc) {
					defer wg.Done()
					end := dp.Now() + dur
					// 2 threads per DB, tuned (as in the paper) so that
					// ~4 DB servers saturate the memory server's NIC.
					inner := sim.NewWaitGroup(k)
					inner.Add(2)
					for t := 0; t < 2; t++ {
						k.Go("io", func(tp *sim.Proc) {
							defer inner.Done()
							buf := make([]byte, 8192)
							for tp.Now() < end {
								off := tp.Rand().Int63n(perDB/8192) * 8192
								t0 := tp.Now()
								if err := f.ReadAt(tp, buf, off); err != nil {
									return
								}
								hist.Observe(tp.Now() - t0)
								bytes += 8192
							}
						})
					}
					inner.Wait(dp)
				})
			}
			wg.Wait(p)
			pt.RandomBPS = float64(bytes) / dur.Seconds()
			pt.RandomLat = hist.Mean()
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
