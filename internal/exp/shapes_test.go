package exp

import (
	"testing"
	"time"
)

// TestRangeScanDesignOrdering checks Figure 9's ordering at 20 spindles:
// Custom beats SMBDirect beats SMB beats HDD+SSD beats HDD, and Custom
// lands within ~15% of Local Memory (a headline claim of the paper).
func TestRangeScanDesignOrdering(t *testing.T) {
	prm := DefaultRangeScanParams()
	prm.Measure = 500 * time.Millisecond
	if testing.Short() {
		// Keep the table (the ordering depends on the working set vs the
		// 32 MiB pool); shrink only the windows.
		prm.Warmup = 300 * time.Millisecond
		prm.Measure = 250 * time.Millisecond
	}
	get := func(d Design) float64 {
		r, err := RunRangeScan(1, d, prm)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		t.Logf("%-22s %8.0f q/s mean=%v", d, r.Throughput, r.MeanLat)
		return r.Throughput
	}
	hdd := get(DesignHDD)
	hddssd := get(DesignHDDSSD)
	smb := get(DesignSMB)
	smbd := get(DesignSMBDirect)
	custom := get(DesignCustom)
	local := get(DesignLocalMemory)

	if !(custom > smbd && smbd > smb && smb > hddssd && hddssd > hdd) {
		t.Errorf("design ordering violated: custom=%.0f smbd=%.0f smb=%.0f hddssd=%.0f hdd=%.0f",
			custom, smbd, smb, hddssd, hdd)
	}
	if custom < local*0.80 {
		t.Errorf("Custom (%.0f) should be within ~20%% of Local Memory (%.0f)", custom, local)
	}
	if custom < hddssd*2.5 {
		t.Errorf("Custom (%.0f) should be >=3x HDD+SSD (%.0f) per the paper's 3x-10x claim", custom, hddssd)
	}
}

// TestRangeScanUpdatesSpindleScaling checks Figure 7's HDD-log effect:
// with 20%% updates, more spindles means higher throughput for Custom
// (the WAL lives on the HDD array).
func TestRangeScanUpdatesSpindleScaling(t *testing.T) {
	prm := DefaultRangeScanParams()
	prm.Measure = 500 * time.Millisecond
	prm.UpdateFraction = 0.20
	if testing.Short() {
		prm.Warmup = 300 * time.Millisecond
		prm.Measure = 250 * time.Millisecond
	}
	var prev float64
	for _, sp := range []int{4, 20} {
		prm.Spindles = sp
		r, err := RunRangeScan(1, DesignCustom, prm)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("spindles=%d: %.0f q/s", sp, r.Throughput)
		if prev > 0 && r.Throughput <= prev {
			t.Errorf("throughput should rise with spindles under updates: %.0f -> %.0f", prev, r.Throughput)
		}
		prev = r.Throughput
	}
}

// TestFig11DrilldownShapes checks Figure 11's claims: remote designs run
// the CPU near saturation while HDD+SSD is I/O-bound at low CPU, and
// Custom's page-fetch latency is far below SMBDirect's under load.
func TestFig11DrilldownShapes(t *testing.T) {
	ddWindow, latWindow := 700*time.Millisecond, 600*time.Millisecond
	if testing.Short() {
		ddWindow, latWindow = 350*time.Millisecond, 300*time.Millisecond
	}
	dds, err := RunFig11Drilldown(1, ddWindow)
	if err != nil {
		t.Fatal(err)
	}
	cpu := make(map[Design]float64)
	for _, dd := range dds {
		cpu[dd.Design] = dd.CPU.Mean()
		t.Logf("%-22s io=%.0f MB/s cpu=%.0f%%", dd.Design, dd.IOBps.Mean()/1e6, dd.CPU.Mean())
	}
	if cpu[DesignCustom] < 60 {
		t.Errorf("Custom CPU = %.0f%%, should be CPU-bound (paper: ~100%%)", cpu[DesignCustom])
	}
	if cpu[DesignHDDSSD] > cpu[DesignCustom]*0.6 {
		t.Errorf("HDD+SSD CPU (%.0f%%) should be far below Custom (%.0f%%)", cpu[DesignHDDSSD], cpu[DesignCustom])
	}

	lats, err := RunFig11Latency(1, latWindow)
	if err != nil {
		t.Fatal(err)
	}
	lat := make(map[Design]time.Duration)
	for _, l := range lats {
		lat[l.Design] = l.Mean
		t.Logf("%-22s fetch latency %v", l.Design, l.Mean)
	}
	if lat[DesignCustom] >= lat[DesignSMBDirect] {
		t.Errorf("Custom fetch latency (%v) should be below SMBDirect (%v) under load",
			lat[DesignCustom], lat[DesignSMBDirect])
	}
}

// TestFig12MoreRemoteMemoryHelps checks Figure 12: throughput rises as
// the BPExt grows, and spreading the same memory over several servers
// changes little.
func TestFig12MoreRemoteMemoryHelps(t *testing.T) {
	fprm := DefaultFig12Params()
	if testing.Short() {
		// Endpoints plus one midpoint: the growth and the single-vs-multi
		// comparison survive, the sweep doesn't.
		fprm.SizesMB = []int64{32, 96, 144}
		fprm.Rows = 300000
		fprm.Measure = 400 * time.Millisecond
	}
	single, err := RunFig12BPExtSize(1, false, fprm)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range single {
		t.Logf("ext=%dMB servers=%d: %.0f q/s", pt.BPExtBytes>>20, pt.Servers, pt.Throughput)
	}
	first, last := single[0], single[len(single)-1]
	if last.Throughput < first.Throughput*1.5 {
		t.Errorf("growing BPExt %dMB->%dMB should raise throughput markedly: %.0f -> %.0f",
			first.BPExtBytes>>20, last.BPExtBytes>>20, first.Throughput, last.Throughput)
	}
	multi, err := RunFig12BPExtSize(1, true, fprm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range single {
		a, b := single[i].Throughput, multi[i].Throughput
		if b < a*0.75 || b > a*1.25 {
			t.Errorf("point %d: multi-server throughput %.0f deviates from single-server %.0f", i, b, a)
		}
	}
}

// TestFig13TCPHurtsRDMADoesNot checks Figure 13: serving BPExt traffic
// over RDMA leaves the donor's workload intact; TCP costs ~10%.
func TestFig13TCPHurtsRDMADoesNot(t *testing.T) {
	prm := DefaultFig13Params()
	if testing.Short() {
		// Fewer clients, shorter windows: SB stays CPU-saturated (40
		// clients x 2ms query CPU), so the dent ratios survive.
		prm.SBClients = 40
		prm.Warmup = 200 * time.Millisecond
		prm.Measure = 800 * time.Millisecond
	}
	res, err := RunFig13RemoteImpact(1, prm)
	if err != nil {
		t.Fatal(err)
	}
	byMode := make(map[string]Fig13Result)
	for _, r := range res {
		byMode[r.Mode] = r
		t.Logf("%-8s %.0f q/s mean=%v p99=%v", r.Mode, r.Throughput, r.MeanLat, r.P99Lat)
	}
	def, rdma, tcp := byMode["Default"], byMode["RDMA"], byMode["TCP"]
	if rdma.Throughput < def.Throughput*0.97 {
		t.Errorf("RDMA should not dent the donor: %.0f vs default %.0f", rdma.Throughput, def.Throughput)
	}
	if tcp.Throughput > def.Throughput*0.97 {
		t.Errorf("TCP should dent the donor by ~10%%: %.0f vs default %.0f", tcp.Throughput, def.Throughput)
	}
	if tcp.P99Lat < def.P99Lat {
		t.Errorf("TCP should inflate the donor's tail: %v vs %v", tcp.P99Lat, def.P99Lat)
	}
}

// TestFig16PrimingShapes checks Figure 16: priming is orders of
// magnitude faster than workload warm-up, and a primed pool's tails are
// no worse than cold.
func TestFig16PrimingShapes(t *testing.T) {
	prm := DefaultFig16Params()
	prm.BPSizesMB = []int64{10, 20}
	if testing.Short() {
		prm.Rows = 125000 // ~30 MB database; the 25% hotspot still overflows the pool
	}
	res, err := RunFig16Priming(1, prm)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		t.Logf("bp=%dMB warmup=%v prime=%v cold-p95=%v primed-p95=%v",
			r.BPBytes>>20, r.WarmupTime, r.PrimeTime, r.ColdP95, r.PrimedP95)
		if r.PrimeTime*50 > r.WarmupTime {
			t.Errorf("prime (%v) should be orders of magnitude under warm-up (%v)", r.PrimeTime, r.WarmupTime)
		}
		if r.PrimedP95 > r.ColdP95 {
			t.Errorf("primed p95 (%v) should not exceed cold p95 (%v)", r.PrimedP95, r.ColdP95)
		}
	}
	// The bigger pool must show a clear tail win (Figure 16b's 4-10x).
	big := res[len(res)-1]
	if float64(big.ColdP95) < 3*float64(big.PrimedP95) {
		t.Errorf("at %dMB: cold p95 %v should be >=3x primed %v", big.BPBytes>>20, big.ColdP95, big.PrimedP95)
	}
}

// TestFig24MemorySweepConverges checks Figure 24: Custom's advantage
// shrinks as local memory grows and vanishes when the database fits.
func TestFig24MemorySweepConverges(t *testing.T) {
	fprm := DefaultFig24Params()
	if testing.Short() {
		// The assertions only read the 16 MB and 128 MB endpoints.
		fprm.MemsMB = []int64{16, 128}
		fprm.Measure = 400 * time.Millisecond
	}
	pts, err := RunFig24LocalMemorySweep(1, fprm)
	if err != nil {
		t.Fatal(err)
	}
	ratios := make(map[int64]float64)
	thr := make(map[int64]map[Design]float64)
	for _, pt := range pts {
		if thr[pt.LocalMemBytes] == nil {
			thr[pt.LocalMemBytes] = make(map[Design]float64)
		}
		thr[pt.LocalMemBytes][pt.Design] = pt.Throughput
	}
	for mem, m := range thr {
		ratios[mem] = m[DesignCustom] / m[DesignHDDSSD]
		t.Logf("local=%dMB: custom=%.0f hddssd=%.0f ratio=%.2f", mem>>20, m[DesignCustom], m[DesignHDDSSD], ratios[mem])
	}
	small, large := ratios[16<<20], ratios[128<<20]
	if small < 1.5 {
		t.Errorf("at 16MB local memory Custom should win clearly (ratio %.2f)", small)
	}
	if large > 1.25 {
		t.Errorf("at 128MB local memory the designs should converge (ratio %.2f)", large)
	}
	if large >= small {
		t.Errorf("advantage should shrink with memory: %.2f -> %.2f", small, large)
	}
}

// TestFig25AggregateScales checks Figure 25: aggregate throughput grows
// with DB-server count until the shared memory server's NIC saturates.
func TestFig25AggregateScales(t *testing.T) {
	prm := DefaultFig25Params()
	if testing.Short() {
		prm.Rows = 80000
		prm.Clients = 20
		prm.Warmup = 150 * time.Millisecond
		prm.Measure = 500 * time.Millisecond
	}
	pts, err := RunFig25MultiDBRangeScan(1, prm)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		t.Logf("dbs=%d agg=%.0f q/s lat=%v", pt.DBServers, pt.Throughput, pt.MeanLat)
	}
	if pts[1].Throughput < pts[0].Throughput*1.5 {
		t.Errorf("2 DBs should scale aggregate throughput: %.0f -> %.0f", pts[0].Throughput, pts[1].Throughput)
	}
	if pts[len(pts)-1].Throughput < pts[0].Throughput*2 {
		t.Errorf("8 DBs should beat 1 DB clearly")
	}
}

// TestAblations checks Table 1: the chosen design choices beat the
// rejected alternatives by the margins the paper cites.
func TestAblations(t *testing.T) {
	a, err := RunAblationSyncVsAsync(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sync=%v async=%v (%.2fx)", a.ChosenLat, a.AltLat, a.Factor())
	if a.Factor() < 1.05 {
		t.Errorf("async should be measurably slower than sync spin: %.2fx", a.Factor())
	}
	b, err := RunAblationRegistration(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("staging=%v on-demand=%v (%.2fx)", b.ChosenLat, b.AltLat, b.Factor())
	if b.Factor() < 1.5 {
		t.Errorf("on-demand registration should cost far more than staging memcpy: %.2fx", b.Factor())
	}
	c, err := RunAblationEncryption(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plain=%v encrypted=%v (%.2fx)", c.ChosenLat, c.AltLat, c.Factor())
	if c.Factor() < 1.1 || c.Factor() > 3 {
		t.Errorf("encryption overhead out of band: %.2fx", c.Factor())
	}
	d, err := RunAblationAdaptive(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adaptive=%v async=%v (%.2fx)", d.ChosenLat, d.AltLat, d.Factor())
	if d.Factor() < 1.05 {
		t.Errorf("adaptive should beat always-async on 8K transfers: %.2fx", d.Factor())
	}
}
