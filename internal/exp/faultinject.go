// Fault injection for the experiment harness: deterministic, scheduled
// failures of the remote-memory machinery. Because the simulation is a
// discrete-event system with a virtual clock, an injected fault fires at
// an exact simulated instant, so a fixed seed reproduces the identical
// failure interleaving run after run — the property the recovery tests
// and the "faults" experiment rely on.
package exp

import (
	"fmt"
	"sort"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/cluster"
	"remotedb/internal/core"
	"remotedb/internal/fault"
	"remotedb/internal/sim"
	"remotedb/internal/workload"
)

// FaultKind enumerates the injectable failures.
type FaultKind int

const (
	// FaultProxyCrash fails memory server number N (its proxy stops
	// responding and every MR it donated is revoked) — the paper's
	// remote-node failure.
	FaultProxyCrash FaultKind = iota
	// FaultPartition cuts the broker and every lease holder off from the
	// metastore ensemble: renewals and grants time out until FaultHeal.
	FaultPartition
	// FaultHeal ends a metastore partition.
	FaultHeal
	// FaultRevocationStorm revokes the N oldest live leases at once —
	// donor memory pressure reclaiming regions in bulk.
	FaultRevocationStorm
	// FaultRevokeFile revokes N leases backing the named remote file
	// (stripe-targeted revocation; N<=0 means every stripe).
	FaultRevokeFile
	// FaultReplenish brings a fresh memory server with N MRs into the
	// cluster — the donor-side recovery that refills the broker's pool.
	FaultReplenish
	// FaultBitFlip flips one bit in block N of the named file, on
	// replica Replica — silent media corruption. Requires integrity
	// framing (it is a no-op otherwise: there is no frame to corrupt).
	FaultBitFlip
	// FaultTornWrite clobbers the second half of block N's stored frame
	// on replica Replica — a write that stopped midway.
	FaultTornWrite
	// FaultStaleSnapshot records the current stored frame of block N on
	// replica Replica, to be resurrected later by FaultStaleRestore.
	FaultStaleSnapshot
	// FaultStaleRestore writes every frame snapshot taken for the named
	// file back over the current contents — a stale replica
	// resurrection: old data with a valid checksum, caught only by the
	// generation stamp.
	FaultStaleRestore
)

func (fk FaultKind) String() string {
	switch fk {
	case FaultProxyCrash:
		return "proxy-crash"
	case FaultPartition:
		return "metastore-partition"
	case FaultHeal:
		return "metastore-heal"
	case FaultRevocationStorm:
		return "revocation-storm"
	case FaultRevokeFile:
		return "revoke-file"
	case FaultReplenish:
		return "replenish"
	case FaultBitFlip:
		return "bit-flip"
	case FaultTornWrite:
		return "torn-write"
	case FaultStaleSnapshot:
		return "stale-snapshot"
	case FaultStaleRestore:
		return "stale-restore"
	}
	return "unknown"
}

// FaultEvent is one scheduled failure.
type FaultEvent struct {
	At   time.Duration // absolute simulation time
	Kind FaultKind
	N    int    // proxy index, storm width, stripe/block count, or MR count
	Name string // target file (FaultRevokeFile and the corruption kinds)
	// Replica selects which copy of the block the corruption kinds hit
	// (0 is the primary; only meaningful with replication).
	Replica int
}

// InjectFaults schedules the events on the bed's kernel. Call before
// (or while) the workload runs; each event fires exactly at its virtual
// time. Injected-fault counts are recorded on the bed's broker and
// metastore counters.
func (bed *Bed) InjectFaults(events []FaultEvent) {
	for _, ev := range events {
		ev := ev
		name := fmt.Sprintf("fault:%s@%v", ev.Kind, ev.At)
		bed.K.GoAt(ev.At, name, func(p *sim.Proc) { bed.applyFault(p, ev) })
	}
}

func (bed *Bed) applyFault(p *sim.Proc, ev FaultEvent) {
	switch ev.Kind {
	case FaultProxyCrash:
		if ev.N >= 0 && ev.N < len(bed.Proxies) {
			bed.Broker.FailProxy(bed.Proxies[ev.N])
		}
	case FaultPartition:
		if bed.Store != nil {
			bed.Store.SetPartitioned(true)
		}
	case FaultHeal:
		if bed.Store != nil {
			bed.Store.SetPartitioned(false)
		}
	case FaultRevocationStorm:
		bed.Broker.RevokeOldest(ev.N)
	case FaultRevokeFile:
		if bed.FS == nil {
			return
		}
		f, ok := bed.FS.Lookup(ev.Name)
		if !ok {
			return
		}
		ids := f.LeaseIDs()
		n := ev.N
		if n <= 0 || n > len(ids) {
			n = len(ids)
		}
		for i := 0; i < n; i++ {
			bed.Broker.Revoke(ids[i])
		}
	case FaultReplenish:
		m := bed.newMemServer(p, ev.N)
		if m != nil {
			bed.Mems = append(bed.Mems, m.Server)
			bed.Proxies = append(bed.Proxies, m)
		}
	case FaultBitFlip, FaultTornWrite, FaultStaleSnapshot, FaultStaleRestore:
		bed.applyCorruption(ev)
	}
}

// frameSnap identifies one recorded frame snapshot.
type frameSnap struct {
	name    string
	block   int
	replica int
}

// applyCorruption pokes stored bytes directly in a donor's memory
// region, bypassing the transport: the FS observes nothing until a read,
// scrub, or repair verifies the frame. Corruption targets the first
// written block at or after index N (wrapping), so storms written
// against a warm file always land on real data deterministically.
func (bed *Bed) applyCorruption(ev FaultEvent) {
	if bed.FS == nil {
		return
	}
	f, ok := bed.FS.Lookup(ev.Name)
	if !ok {
		return
	}
	if ev.Kind == FaultStaleRestore {
		// Resurrect every snapshot recorded for this file, in a fixed
		// order (the poke order cannot affect the final state, but the
		// harness stays deterministic on principle).
		keys := make([]frameSnap, 0, len(bed.snaps))
		for k := range bed.snaps {
			if k.name == ev.Name {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].block != keys[j].block {
				return keys[i].block < keys[j].block
			}
			return keys[i].replica < keys[j].replica
		})
		for _, k := range keys {
			f.RestoreBlockFrame(k.block, k.replica, bed.snaps[k])
			delete(bed.snaps, k)
		}
		return
	}
	g := pickWrittenBlock(f, ev.N)
	if g < 0 {
		return
	}
	switch ev.Kind {
	case FaultBitFlip:
		f.InjectBlockFlip(g, ev.Replica)
	case FaultTornWrite:
		f.InjectBlockTear(g, ev.Replica)
	case FaultStaleSnapshot:
		if snap := f.SnapshotBlockFrame(g, ev.Replica); snap != nil {
			if bed.snaps == nil {
				bed.snaps = make(map[frameSnap][]byte)
			}
			bed.snaps[frameSnap{ev.Name, g, ev.Replica}] = snap
		}
	}
}

// pickWrittenBlock returns the first written block at or after index
// from, wrapping to the start; -1 if the file has no written block (or
// no integrity framing at all).
func pickWrittenBlock(f *core.File, from int) int {
	n := f.Blocks()
	if n == 0 {
		return -1
	}
	if from < 0 || from >= n {
		from = 0
	}
	for i := 0; i < n; i++ {
		g := (from + i) % n
		if f.BlockWritten(g) {
			return g
		}
	}
	return -1
}

// newMemServer adds one more donor with mrs MRs to the running cluster.
func (bed *Bed) newMemServer(p *sim.Proc, mrs int) *broker.Proxy {
	if bed.Broker == nil || mrs <= 0 {
		return nil
	}
	name := fmt.Sprintf("mem%d", len(bed.Mems)+1)
	s := cluster.NewServer(bed.K, name, serverConfig(bed.Cfg.Spindles))
	px, err := bed.Broker.AddProxy(p, s, bed.Cfg.MRBytes, mrs)
	if err != nil {
		return nil
	}
	return px
}

// FaultPhases is the result of RunFaultRecovery: RangeScan throughput in
// three consecutive windows — before any fault, while stripes are being
// revoked and repaired, and after recovery settles.
type FaultPhases struct {
	Design  Design
	Healthy float64 // queries/sec, no faults
	During  float64 // queries/sec, faults firing mid-window
	After   float64 // queries/sec, post-recovery

	Errors     int64 // engine-visible query errors across all windows
	Lost       int64 // stripe-loss events detected by the FS
	Restripes  int64 // stripes re-leased
	Salvages   int64 // salvage callbacks completed
	Timeouts   int64 // metastore operations rejected while partitioned
	Recovered  bool  // throughput after faults within 20% of healthy
	ExtHealthy bool  // BPExt still attached at the end
}

// FaultRecoveryParams tunes RunFaultRecovery.
type FaultRecoveryParams struct {
	Rows    int
	Clients int
	Window  time.Duration // length of each of the three phases
}

// DefaultFaultRecoveryParams keeps the experiment fast: a small table
// and short windows still exercise every recovery path.
func DefaultFaultRecoveryParams() FaultRecoveryParams {
	return FaultRecoveryParams{Rows: 60000, Clients: 16, Window: 250 * time.Millisecond}
}

// RunFaultRecovery measures RangeScan throughput through a fault storm
// on the Custom design: mid-run, every BPExt stripe is revoked and a
// short metastore partition delays the re-leases. The engine must see
// zero errors (the extension degrades to data-file reads while stripes
// repair) and throughput must recover once restriping completes.
func RunFaultRecovery(seed int64, prm FaultRecoveryParams) (*FaultPhases, error) {
	out := &FaultPhases{Design: DesignCustom}
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		cfg := DefaultBedConfig(DesignCustom)
		cfg.Seed = seed
		// Renew aggressively and retry long enough to ride out the
		// injected partition.
		cfg.LeaseTTL = 100 * time.Millisecond
		cfg.ExpireEvery = 25 * time.Millisecond
		cfg.Retry = fault.DefaultRetryPolicy()
		cfg.Retry.MaxAttempts = 12
		bed, err := NewBed(p, cfg)
		if err != nil {
			return err
		}
		wcfg := workload.DefaultRangeScan()
		wcfg.Rows = prm.Rows
		wcfg.Clients = prm.Clients
		wcfg.UpdateFraction = 0.05
		w, err := workload.NewRangeScan(p, bed.Eng, wcfg)
		if err != nil {
			return err
		}

		// Phase 1: healthy.
		warm := 100 * time.Millisecond
		res := w.Run(p, warm, prm.Window)
		out.Healthy = res.Throughput()
		out.Errors += res.Errors

		// Phase 2: revoke every BPExt stripe a little into the window,
		// inside a metastore partition so renewals and the first
		// re-lease attempts must retry. The partition outlasts one full
		// renewal interval (LeaseTTL/2), so at least one renew tick is
		// guaranteed to land inside it regardless of phase alignment —
		// the batched pool can go tens of milliseconds without touching
		// the extension, so revocation discovery is bounded by the
		// renewal cadence, not by I/O errors. The revoked MRs are
		// destroyed, so a fresh donor replenishes the pool once the
		// partition heals — the repairs' backoff rides out the gap.
		now := p.Now()
		stripes := int(cfg.BPExtBytes / int64(cfg.MRBytes))
		bed.InjectFaults([]FaultEvent{
			{At: now + 20*time.Millisecond, Kind: FaultPartition},
			{At: now + 25*time.Millisecond, Kind: FaultRevokeFile, Name: "bpext"},
			{At: now + 90*time.Millisecond, Kind: FaultHeal},
			{At: now + 100*time.Millisecond, Kind: FaultReplenish, N: stripes},
		})
		res = w.Run(p, 0, prm.Window)
		out.During = res.Throughput()
		out.Errors += res.Errors

		// Phase 3: recovered.
		res = w.Run(p, 50*time.Millisecond, prm.Window)
		out.After = res.Throughput()
		out.Errors += res.Errors

		out.Lost = bed.FS.LostStripes
		out.Restripes = bed.FS.Restripes
		out.Salvages = bed.FS.Salvages
		if bed.Store != nil {
			out.Timeouts = bed.Store.Timeouts
		}
		out.Recovered = out.After >= 0.8*out.Healthy
		out.ExtHealthy = bed.Eng.BP.ExtensionHealthy()
		if bpx, ok := bed.BPExtFile.(*core.File); ok && bpx.Unavailable() {
			out.ExtHealthy = false
		}
		bed.Close(p)
		return nil
	})
	return out, err
}
