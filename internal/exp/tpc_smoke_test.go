package exp

import (
	"testing"
	"time"
)

// TestTPCHSmoke runs a query subset on the two headline designs and
// checks the paper's ordering.
func TestTPCHSmoke(t *testing.T) {
	prm := DefaultTPCHParams()
	prm.SF = 0.02
	prm.LocalMemBytes = 3 << 20
	prm.BPExtBytes = 32 << 20
	prm.Streams = 2
	prm.QueryIDs = []int{1, 3, 6, 10}
	if testing.Short() {
		prm.Streams = 1
		prm.QueryIDs = []int{1, 6}
	}
	base, err := RunTPCH(1, DesignHDDSSD, prm)
	if err != nil {
		t.Fatal(err)
	}
	cust, err := RunTPCH(1, DesignCustom, prm)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("HDD+SSD: %.1f q/h, Custom: %.1f q/h", base.QueriesPerHour, cust.QueriesPerHour)
	h := Improvements(base.QueryLatencies, cust.QueryLatencies)
	for id, f := range h.Factors {
		t.Logf("Q%d: %.2fx", id, f)
	}
	if cust.QueriesPerHour <= base.QueriesPerHour {
		t.Errorf("Custom (%.1f q/h) should beat HDD+SSD (%.1f q/h)", cust.QueriesPerHour, base.QueriesPerHour)
	}
}

func TestTPCCSmoke(t *testing.T) {
	prm := DefaultTPCCParams()
	prm.Cfg.Warehouses = 2
	prm.Cfg.Clients = 40
	prm.Measure = 500 * time.Millisecond
	if testing.Short() {
		prm.Cfg.Clients = 20
		prm.Measure = 250 * time.Millisecond
	}
	for _, rm := range []bool{false, true} {
		hdd, err := RunTPCC(1, DesignHDDSSD, rm, prm)
		if err != nil {
			t.Fatal(err)
		}
		cust, err := RunTPCC(1, DesignCustom, rm, prm)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("readMostly=%v: HDD+SSD %.0f tx/s, Custom %.0f tx/s", rm, hdd.Throughput, cust.Throughput)
	}
}
