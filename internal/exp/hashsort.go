package exp

import (
	"time"

	"remotedb/internal/metrics"
	"remotedb/internal/sim"
	"remotedb/internal/workload"
)

// Fig14Result is one bar of Figure 14a plus the drill-down series.
type Fig14Result struct {
	Design   Design
	Latency  time.Duration
	Spindles int

	JoinSpilled bool
	SortSpilled bool
	TempDBRead  int64
	TempDBWrote int64
	TempIOBps   metrics.Series // Figure 14b
	CPUUtil     metrics.Series // Figure 14c
}

// HashSortParams tunes the Hash+Sort experiment.
type HashSortParams struct {
	Spindles  int
	Cfg       workload.HashSortConfig
	MemBytes  int64 // local memory — large enough to cache the inputs
	Grant     int64 // per-query grant; small enough to force spills
	TempBytes int64
	Sample    time.Duration // drill-down sampling period (0 = none)
}

// DefaultHashSortParams mirrors Table 4's Hash+Sort row (scaled):
// 227 GB data -> 227 MB, 256 GB memory -> 256 MB, 320 GB TempDB ->
// 320 MB.
func DefaultHashSortParams() HashSortParams {
	return HashSortParams{
		Spindles:  20,
		Cfg:       workload.DefaultHashSort(),
		MemBytes:  256 << 20,
		Grant:     8 << 20,
		TempBytes: 320 << 20,
	}
}

// RunHashSort runs the Hash+Sort query once on a design.
func RunHashSort(seed int64, d Design, prm HashSortParams) (*Fig14Result, error) {
	res := &Fig14Result{Design: d, Spindles: prm.Spindles}
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		cfg := DefaultBedConfig(d)
		cfg.Spindles = prm.Spindles
		cfg.LocalMemBytes = prm.MemBytes
		cfg.BPExtBytes = 0 // analytics: BPExt disabled (Section 5.3)
		cfg.TempBytes = prm.TempBytes
		cfg.OLTP = false
		cfg.GrantBytes = prm.Grant
		// Remote designs need several memory servers to hold 320 MB.
		if d.Remote() {
			cfg.RemoteServers = 2
			cfg.MRBytes = 16 << 20
		}
		bed, err := NewBed(p, cfg)
		if err != nil {
			return err
		}
		w, err := workload.NewHashSort(p, bed.Eng, prm.Cfg)
		if err != nil {
			return err
		}
		var samplers []*workload.Sampler
		if prm.Sample > 0 {
			var lastIO int64
			var lastBusy int64
			samplers = append(samplers,
				workload.NewSampler(p.Kernel(), "tempdb", prm.Sample, func(at time.Duration) float64 {
					cur := bed.Eng.Temp.BytesSpilled + bed.Eng.Temp.BytesRead
					v := float64(cur-lastIO) / prm.Sample.Seconds()
					lastIO = cur
					return v
				}),
				workload.NewSampler(p.Kernel(), "cpu", prm.Sample, func(at time.Duration) float64 {
					busy := bed.DB.CPUBusyNanos()
					v := float64(busy-lastBusy) / float64(prm.Sample) / float64(bed.DB.Cores()) * 100
					lastBusy = busy
					return v
				}),
			)
		}
		lat, ctx, err := w.Run(p)
		for _, s := range samplers {
			s.Stop()
		}
		if err != nil {
			return err
		}
		res.Latency = lat
		res.JoinSpilled = ctx.SpilledParts > 0
		res.SortSpilled = ctx.SpilledRuns > 0
		res.TempDBRead = bed.Eng.Temp.BytesRead
		res.TempDBWrote = bed.Eng.Temp.BytesSpilled
		if len(samplers) == 2 {
			res.TempIOBps = samplers[0].Series
			res.CPUUtil = samplers[1].Series
		}
		bed.Close(p)
		return nil
	})
	return res, err
}

// RunFig14HashSort reproduces Figure 14a: Hash+Sort latency per design
// and spindle count.
func RunFig14HashSort(seed int64, spindleCounts []int, designs []Design) ([]Fig14Result, error) {
	if len(spindleCounts) == 0 {
		spindleCounts = []int{4, 8, 20}
	}
	if len(designs) == 0 {
		designs = []Design{DesignHDD, DesignHDDSSD, DesignSMB, DesignSMBDirect, DesignCustom}
	}
	var out []Fig14Result
	for _, sp := range spindleCounts {
		for _, d := range designs {
			prm := DefaultHashSortParams()
			prm.Spindles = sp
			r, err := RunHashSort(seed, d, prm)
			if err != nil {
				return nil, err
			}
			out = append(out, *r)
		}
	}
	return out, nil
}
