package exp

import (
	"time"

	"remotedb/internal/sim"
	"remotedb/internal/workload"
	"remotedb/internal/workload/tpcc"
	"remotedb/internal/workload/tpcds"
	"remotedb/internal/workload/tpch"
)

// TPCHParams sizes the TPC-H experiment. Ratios follow Table 4: local
// memory ≈ 7.6% of data, BPExt ≈ 30% of data, five query streams.
type TPCHParams struct {
	SF            float64
	LocalMemBytes int64
	BPExtBytes    int64
	TempBytes     int64
	Grant         int64
	Streams       int
	QueryIDs      []int // subset to run (nil = all 22)
}

// DefaultTPCHParams uses SF 0.1 (the paper's SF200 scaled ~1000x, with
// the memory ratios preserved instead of absolute sizes).
func DefaultTPCHParams() TPCHParams {
	return TPCHParams{
		SF:            0.1,
		LocalMemBytes: 10 << 20,
		BPExtBytes:    128 << 20,
		TempBytes:     64 << 20,
		Grant:         2 << 20,
		Streams:       5,
	}
}

// QueryLatency is one query's measured latency under one design.
type QueryLatency struct {
	QueryID int
	Design  Design
	Latency time.Duration
}

// TPCHResult aggregates Figures 18 and 19 for one design.
type TPCHResult struct {
	Design         Design
	QueriesPerHour float64
	QueryLatencies []QueryLatency
	SpilledQueries int
}

// newTPCHBed builds a bed and loads TPC-H into it.
func newTPCHBed(p *sim.Proc, d Design, prm TPCHParams) (*Bed, *tpch.DB, error) {
	cfg := DefaultBedConfig(d)
	cfg.LocalMemBytes = prm.LocalMemBytes
	cfg.BPExtBytes = prm.BPExtBytes
	cfg.TempBytes = prm.TempBytes
	cfg.GrantBytes = prm.Grant
	cfg.OLTP = false // analytics: no SSD BPExt for HDD+SSD (Section 5.3)
	if d.Remote() {
		cfg.RemoteServers = 2
		cfg.MRBytes = 16 << 20
	}
	bed, err := NewBed(p, cfg)
	if err != nil {
		return nil, nil, err
	}
	db, err := tpch.Load(p, bed.Eng, prm.SF)
	if err != nil {
		return nil, nil, err
	}
	if err := bed.Eng.BP.FlushAll(p); err != nil {
		return nil, nil, err
	}
	return bed, db, nil
}

// RunTPCH runs the query set on one design: sequential per-query
// latencies (Figure 19's input) followed by a multi-stream throughput
// pass (Figure 18).
func RunTPCH(seed int64, d Design, prm TPCHParams) (*TPCHResult, error) {
	res := &TPCHResult{Design: d}
	queries := tpch.Queries()
	if prm.QueryIDs != nil {
		queries = nil
		for _, id := range prm.QueryIDs {
			queries = append(queries, tpch.QueryByID(id))
		}
	}
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		bed, db, err := newTPCHBed(p, d, prm)
		if err != nil {
			return err
		}
		// Warm-up pass: one untimed execution of the set so the BPExt
		// reaches steady state (the paper measures warmed systems).
		for _, q := range queries {
			if err := q.Run(bed.Eng.NewCtx(p), db); err != nil {
				return err
			}
		}
		// Pass 1: per-query latencies, sequential.
		for _, q := range queries {
			ctx := bed.Eng.NewCtx(p)
			t0 := p.Now()
			if err := q.Run(ctx, db); err != nil {
				return err
			}
			res.QueryLatencies = append(res.QueryLatencies, QueryLatency{
				QueryID: q.ID, Design: d, Latency: p.Now() - t0,
			})
			if ctx.SpilledParts > 0 || ctx.SpilledRuns > 0 {
				res.SpilledQueries++
			}
		}
		// Pass 2: throughput with concurrent streams, each running the
		// set in a rotated order.
		k := p.Kernel()
		start := p.Now()
		var completed int64
		wg := sim.NewWaitGroup(k)
		wg.Add(prm.Streams)
		for s := 0; s < prm.Streams; s++ {
			s := s
			k.Go("stream", func(sp *sim.Proc) {
				defer wg.Done()
				for i := range queries {
					q := queries[(i+s*7)%len(queries)]
					ctx := bed.Eng.NewCtx(sp)
					if err := q.Run(ctx, db); err != nil {
						return
					}
					completed++
				}
			})
		}
		wg.Wait(p)
		elapsed := p.Now() - start
		res.QueriesPerHour = float64(completed) / elapsed.Hours()
		bed.Close(p)
		return nil
	})
	return res, err
}

// ImprovementHistogram buckets per-query latency improvement factors the
// way Figures 19 and 21 do.
type ImprovementHistogram struct {
	Buckets map[string]int // "<2x", "2-5x", "5-10x", "10-50x", "50-100x", ">=100x"
	Factors map[int]float64
}

// Improvements computes baseline/custom latency ratios per query.
func Improvements(baseline, custom []QueryLatency) *ImprovementHistogram {
	base := make(map[int]time.Duration)
	for _, q := range baseline {
		base[q.QueryID] = q.Latency
	}
	h := &ImprovementHistogram{Buckets: make(map[string]int), Factors: make(map[int]float64)}
	for _, q := range custom {
		b, ok := base[q.QueryID]
		if !ok || q.Latency <= 0 {
			continue
		}
		f := float64(b) / float64(q.Latency)
		h.Factors[q.QueryID] = f
		switch {
		case f < 2:
			h.Buckets["<2x"]++
		case f < 5:
			h.Buckets["2-5x"]++
		case f < 10:
			h.Buckets["5-10x"]++
		case f < 50:
			h.Buckets["10-50x"]++
		case f < 100:
			h.Buckets["50-100x"]++
		default:
			h.Buckets[">=100x"]++
		}
	}
	return h
}

// --- TPC-DS ---------------------------------------------------------------

// TPCDSParams sizes the TPC-DS experiment.
type TPCDSParams struct {
	SF            float64
	LocalMemBytes int64
	BPExtBytes    int64
	TempBytes     int64
	Grant         int64
	Streams       int
	QueryIDs      []int
}

// DefaultTPCDSParams keeps the paper's 900 GB : 64 GB : 256 GB ratios.
func DefaultTPCDSParams() TPCDSParams {
	return TPCDSParams{
		SF:            0.2,
		LocalMemBytes: 8 << 20,
		BPExtBytes:    96 << 20,
		TempBytes:     64 << 20,
		Grant:         2 << 20,
		Streams:       5,
	}
}

// RunTPCDS mirrors RunTPCH for the TPC-DS stand-in (Figures 20/21).
func RunTPCDS(seed int64, d Design, prm TPCDSParams) (*TPCHResult, error) {
	res := &TPCHResult{Design: d}
	all := tpcds.Queries()
	queries := all
	if prm.QueryIDs != nil {
		queries = nil
		for _, id := range prm.QueryIDs {
			queries = append(queries, all[id-1])
		}
	}
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		cfg := DefaultBedConfig(d)
		cfg.LocalMemBytes = prm.LocalMemBytes
		cfg.BPExtBytes = prm.BPExtBytes
		cfg.TempBytes = prm.TempBytes
		cfg.GrantBytes = prm.Grant
		cfg.OLTP = false
		if d.Remote() {
			cfg.RemoteServers = 2
			cfg.MRBytes = 16 << 20
		}
		bed, err := NewBed(p, cfg)
		if err != nil {
			return err
		}
		db, err := tpcds.Load(p, bed.Eng, prm.SF)
		if err != nil {
			return err
		}
		if err := bed.Eng.BP.FlushAll(p); err != nil {
			return err
		}
		// Warm-up pass (steady-state BPExt), then timed pass.
		for _, q := range queries {
			if err := q.Run(bed.Eng.NewCtx(p), db); err != nil {
				return err
			}
		}
		for _, q := range queries {
			ctx := bed.Eng.NewCtx(p)
			t0 := p.Now()
			if err := q.Run(ctx, db); err != nil {
				return err
			}
			res.QueryLatencies = append(res.QueryLatencies, QueryLatency{
				QueryID: q.ID, Design: d, Latency: p.Now() - t0,
			})
		}
		k := p.Kernel()
		start := p.Now()
		var completed int64
		wg := sim.NewWaitGroup(k)
		wg.Add(prm.Streams)
		for s := 0; s < prm.Streams; s++ {
			s := s
			k.Go("stream", func(sp *sim.Proc) {
				defer wg.Done()
				for i := range queries {
					q := queries[(i+s*11)%len(queries)]
					ctx := bed.Eng.NewCtx(sp)
					if err := q.Run(ctx, db); err != nil {
						return
					}
					completed++
				}
			})
		}
		wg.Wait(p)
		elapsed := p.Now() - start
		res.QueriesPerHour = float64(completed) / elapsed.Hours()
		bed.Close(p)
		return nil
	})
	return res, err
}

// --- TPC-C ----------------------------------------------------------------

// TPCCResult is one bar of Figures 22/23.
type TPCCResult struct {
	Design     Design
	ReadMostly bool
	Throughput float64
	MeanLat    time.Duration
}

// TPCCParams sizes the TPC-C experiment: 168 GB data / 16 GB memory /
// 32 GB BPExt, scaled.
type TPCCParams struct {
	Cfg           tpcc.Config
	LocalMemBytes int64
	BPExtBytes    int64
	Warmup        time.Duration
	Measure       time.Duration
}

// DefaultTPCCParams mirrors Table 4's TPC-C row.
func DefaultTPCCParams() TPCCParams {
	return TPCCParams{
		Cfg:           tpcc.DefaultConfig(),
		LocalMemBytes: 16 << 20,
		BPExtBytes:    32 << 20,
		Warmup:        300 * time.Millisecond,
		Measure:       time.Second,
	}
}

// RunTPCC runs one mix on one design.
func RunTPCC(seed int64, d Design, readMostly bool, prm TPCCParams) (*TPCCResult, error) {
	res := &TPCCResult{Design: d, ReadMostly: readMostly}
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		cfg := DefaultBedConfig(d)
		cfg.LocalMemBytes = prm.LocalMemBytes
		cfg.BPExtBytes = prm.BPExtBytes
		cfg.TempBytes = 8 << 20
		cfg.OLTP = true
		bed, err := NewBed(p, cfg)
		if err != nil {
			return err
		}
		wcfg := prm.Cfg
		wcfg.ReadMostly = readMostly
		db, err := tpcc.Load(p, bed.Eng, wcfg)
		if err != nil {
			return err
		}
		if err := bed.Eng.BP.FlushAll(p); err != nil {
			return err
		}
		r := workload.Drive(p, wcfg.Clients, prm.Warmup, prm.Measure, func(wp *sim.Proc, _ int) error {
			return db.RunOne(wp)
		})
		res.Throughput = r.Throughput()
		res.MeanLat = r.Latency.Mean()
		bed.Close(p)
		return nil
	})
	return res, err
}
