package exp

import (
	"fmt"
	"time"

	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/row"
	"remotedb/internal/engine/semcache"
	"remotedb/internal/engine/txn"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
	"remotedb/internal/workload/tpch"
)

// vfsFile shortens the factory signatures below.
type vfsFile = vfs.File

// newSSDFile places a cache entry on the bed's SSD.
func newSSDFile(bed *Bed, name string) vfs.File {
	return vfs.NewDeviceFile(name, bed.DB.SSD)
}

// MVResult is one bar group of Figure 15a.
type MVResult struct {
	QueryID     int
	BaseLatency time.Duration // tuned indexes, no MV
	SSDLatency  time.Duration // MV stored on HDD+SSD
	RemoteLat   time.Duration // MV pinned in remote memory
	MVBytes     int64
}

// ImprovementSSD returns base/SSD.
func (r MVResult) ImprovementSSD() float64 { return float64(r.BaseLatency) / float64(r.SSDLatency) }

// ImprovementRemote returns base/remote.
func (r MVResult) ImprovementRemote() float64 {
	return float64(r.BaseLatency) / float64(r.RemoteLat)
}

// mvCase defines one materialized view: the MV is a finer-grained
// pre-aggregation/pre-join of the query, so answering from it means a
// cheap re-aggregation instead of base-table scans. The seven queries
// mirror the paper's "seven queries benefited from an MV".
type mvCase struct {
	queryID int
	// build produces the MV contents.
	build func(db *tpch.DB) exec.Op
	// answer consumes the MV rows to produce the query result.
	answer func(mv exec.Op) exec.Op
}

func mvCases(db *tpch.DB) []mvCase {
	return []mvCase{
		{1, func(db *tpch.DB) exec.Op {
			// Pre-aggregated by (returnflag, linestatus, shipdate).
			return &exec.HashAgg{
				In:      &exec.TableScan{Table: db.Lineitem},
				GroupBy: []string{"returnflag", "linestatus", "shipdate"},
				Aggs: []exec.Agg{
					{Fn: exec.AggSum, Col: "quantity", As: "sq"},
					{Fn: exec.AggSum, Col: "extendedprice", As: "sp"},
					{Fn: exec.AggCount, As: "cnt"},
				},
			}
		}, func(mv exec.Op) exec.Op {
			return &exec.HashAgg{
				In:      mv,
				GroupBy: []string{"returnflag", "linestatus"},
				Aggs: []exec.Agg{
					{Fn: exec.AggSum, Col: "sq", As: "sum_qty"},
					{Fn: exec.AggSum, Col: "sp", As: "sum_price"},
				},
			}
		}},
		{3, func(db *tpch.DB) exec.Op {
			// Pre-joined customer x orders x lineitem for BUILDING.
			cu := db.Customer.Schema
			j1 := &exec.HashJoin{
				Build: &exec.Filter{
					In:   &exec.TableScan{Table: db.Customer},
					Pred: func(t row.Tuple) bool { return t[cu.MustOrdinal("mktsegment")].(string) == "BUILDING" },
				},
				Probe:     &exec.TableScan{Table: db.Orders},
				BuildCols: []string{"custkey"},
				ProbeCols: []string{"custkey"},
			}
			j2 := &exec.HashJoin{
				Build:     j1,
				Probe:     &exec.TableScan{Table: db.Lineitem},
				BuildCols: []string{"orderkey"},
				ProbeCols: []string{"orderkey"},
			}
			return &exec.HashAgg{
				In:      j2,
				GroupBy: []string{"orderkey", "orderdate"},
				Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "rev"}},
			}
		}, func(mv exec.Op) exec.Op {
			return &exec.TopN{In: mv, Specs: []exec.SortSpec{{Col: "rev", Desc: true}}, N: 10}
		}},
		{5, func(db *tpch.DB) exec.Op {
			j1 := &exec.HashJoin{
				Build:     &exec.TableScan{Table: db.Customer},
				Probe:     &exec.TableScan{Table: db.Orders},
				BuildCols: []string{"custkey"},
				ProbeCols: []string{"custkey"},
			}
			j2 := &exec.HashJoin{
				Build:     j1,
				Probe:     &exec.TableScan{Table: db.Lineitem},
				BuildCols: []string{"orderkey"},
				ProbeCols: []string{"orderkey"},
			}
			return &exec.HashAgg{
				In:      j2,
				GroupBy: []string{"nationkey", "orderdate"},
				Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "rev"}},
			}
		}, func(mv exec.Op) exec.Op {
			return &exec.Sort{
				In: &exec.HashAgg{
					In:      mv,
					GroupBy: []string{"nationkey"},
					Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "rev", As: "revenue"}},
				},
				Specs: []exec.SortSpec{{Col: "revenue", Desc: true}},
			}
		}},
		{6, func(db *tpch.DB) exec.Op {
			return &exec.HashAgg{
				In:      &exec.TableScan{Table: db.Lineitem},
				GroupBy: []string{"shipdate"},
				Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "rev"}},
			}
		}, func(mv exec.Op) exec.Op {
			sch := mv.Schema()
			return &exec.HashAgg{
				In: &exec.Filter{
					In: mv,
					Pred: func(t row.Tuple) bool {
						d := t[sch.MustOrdinal("shipdate")].(int64)
						return d >= 19940101 && d < 19950101
					},
				},
				Aggs: []exec.Agg{{Fn: exec.AggSum, Col: "rev", As: "revenue"}},
			}
		}},
		{12, func(db *tpch.DB) exec.Op {
			j := &exec.HashJoin{
				Build:     &exec.TableScan{Table: db.Orders},
				Probe:     &exec.TableScan{Table: db.Lineitem},
				BuildCols: []string{"orderkey"},
				ProbeCols: []string{"orderkey"},
			}
			return &exec.HashAgg{
				In:      j,
				GroupBy: []string{"shipmode", "receiptdate"},
				Aggs:    []exec.Agg{{Fn: exec.AggCount, As: "cnt"}},
			}
		}, func(mv exec.Op) exec.Op {
			sch := mv.Schema()
			return &exec.Sort{
				In: &exec.HashAgg{
					In: &exec.Filter{
						In: mv,
						Pred: func(t row.Tuple) bool {
							m := t[sch.MustOrdinal("shipmode")].(string)
							d := t[sch.MustOrdinal("receiptdate")].(int64)
							return (m == "MAIL" || m == "SHIP") && d >= 19940101 && d < 19950101
						},
					},
					GroupBy: []string{"shipmode"},
					Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "cnt", As: "line_count"}},
				},
				Specs: []exec.SortSpec{{Col: "shipmode"}},
			}
		}},
		{14, func(db *tpch.DB) exec.Op {
			j := &exec.HashJoin{
				Build:     &exec.TableScan{Table: db.Part},
				Probe:     &exec.TableScan{Table: db.Lineitem},
				BuildCols: []string{"partkey"},
				ProbeCols: []string{"partkey"},
			}
			return &exec.HashAgg{
				In:      j,
				GroupBy: []string{"shipdate"},
				Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "rev"}},
			}
		}, func(mv exec.Op) exec.Op {
			sch := mv.Schema()
			return &exec.HashAgg{
				In: &exec.Filter{
					In: mv,
					Pred: func(t row.Tuple) bool {
						d := t[sch.MustOrdinal("shipdate")].(int64)
						return d >= 19950901 && d < 19951001
					},
				},
				Aggs: []exec.Agg{{Fn: exec.AggSum, Col: "rev", As: "revenue"}},
			}
		}},
		{19, func(db *tpch.DB) exec.Op {
			j := &exec.HashJoin{
				Build:     &exec.TableScan{Table: db.Part},
				Probe:     &exec.TableScan{Table: db.Lineitem},
				BuildCols: []string{"partkey"},
				ProbeCols: []string{"partkey"},
			}
			return &exec.HashAgg{
				In:      j,
				GroupBy: []string{"container", "quantity"},
				Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "rev"}},
			}
		}, func(mv exec.Op) exec.Op {
			sch := mv.Schema()
			return &exec.HashAgg{
				In: &exec.Filter{
					In: mv,
					Pred: func(t row.Tuple) bool {
						s := t[sch.MustOrdinal("container")].(string)
						q := t[sch.MustOrdinal("quantity")].(float64)
						return (s == "SM CASE" || s == "MED BOX" || s == "LG JAR") && q >= 1 && q <= 30
					},
				},
				Aggs: []exec.Agg{{Fn: exec.AggSum, Col: "rev", As: "revenue"}},
			}
		}},
	}
}

// RunFig15aSemanticCacheMV reproduces Figure 15a: the latency of seven
// TPC-H queries answered from base tables (tuned indexes), from an MV on
// the SSD, and from an MV pinned in remote memory.
func RunFig15aSemanticCacheMV(seed int64, sf float64) ([]MVResult, float64, error) {
	var out []MVResult
	var remoteOverSSD float64
	prm := DefaultTPCHParams()
	if sf > 0 {
		prm.SF = sf
	}
	// The cache experiment runs on the Custom bed: MVs can be pinned
	// remotely; the SSD placement uses the same bed's SSD.
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		bed, db, err := newTPCHBed(p, DesignCustom, prm)
		if err != nil {
			return err
		}
		cases := mvCases(db)
		var sumSSD, sumRemote float64
		for _, mc := range cases {
			res := MVResult{QueryID: mc.queryID}
			q := tpch.QueryByID(mc.queryID)

			// Base: the plain query (warm the pool once first).
			if err := q.Run(bed.Eng.NewCtx(p), db); err != nil {
				return err
			}
			t0 := p.Now()
			if err := q.Run(bed.Eng.NewCtx(p), db); err != nil {
				return err
			}
			res.BaseLatency = p.Now() - t0

			// Build the MV twice: once on SSD, once in remote memory.
			for _, place := range []string{"ssd", "remote"} {
				var cache *semcache.Cache
				if place == "remote" {
					cache = semcache.New(func(pp *sim.Proc, name string, size int64) (vfsFile, error) {
						f, err := bed.FS.Create(pp, fmt.Sprintf("mv-%d-%s", mc.queryID, name), size)
						if err != nil {
							return nil, err
						}
						return f, f.OpenConn(pp)
					}, bed.Eng.Log)
				} else {
					cache = semcache.New(func(pp *sim.Proc, name string, size int64) (vfsFile, error) {
						return newSSDFile(bed, fmt.Sprintf("mv-%d-%s", mc.queryID, name)), nil
					}, bed.Eng.Log)
				}
				entry, err := cache.Build(bed.Eng.NewCtx(p), fmt.Sprintf("mv-q%d-%s", mc.queryID, place),
					fmt.Sprintf("q%d", mc.queryID), mc.build(db), semcache.PolicyInvalidate)
				if err != nil {
					return err
				}
				res.MVBytes = entry.Bytes()
				ctx := bed.Eng.NewCtx(p)
				t0 := p.Now()
				mvScan, err := entry.Scan(ctx)
				if err != nil {
					return err
				}
				if _, err := exec.Run(ctx, mc.answer(mvScan)); err != nil {
					return err
				}
				lat := p.Now() - t0
				if place == "remote" {
					res.RemoteLat = lat
				} else {
					res.SSDLatency = lat
				}
			}
			sumSSD += res.SSDLatency.Seconds()
			sumRemote += res.RemoteLat.Seconds()
			out = append(out, res)
		}
		if sumRemote > 0 {
			remoteOverSSD = sumSSD / sumRemote
		}
		bed.Close(p)
		return nil
	})
	return out, remoteOverSSD, err
}

// Fig15bPoint is one selectivity position of Figure 15b.
type Fig15bPoint struct {
	Selectivity float64
	INLJ        time.Duration
	HJ          time.Duration
}

// pinnedIndex models the non-clustered index of Figure 15b as a pinned
// structure in the semantic cache: a packed, sorted array of order rows
// in a file. A probe reads the one 8 KiB leaf holding the key (the inner
// levels are assumed RAM-resident, as in the paper's warmed system).
type pinnedIndex struct {
	file   vfsFile
	offset map[int64]int64 // orderkey -> byte offset of its leaf
}

func buildPinnedIndex(p *sim.Proc, db *tpch.DB, file vfsFile) (*pinnedIndex, error) {
	pairs, err := db.Orders.Clustered.ScanRange(p, nil, nil, 0)
	if err != nil {
		return nil, err
	}
	idx := &pinnedIndex{file: file, offset: make(map[int64]int64, len(pairs))}
	var off int64
	buf := make([]byte, 0, 8192)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := file.WriteAt(p, buf, off); err != nil {
			return err
		}
		off += 8192
		buf = buf[:0]
		return nil
	}
	for _, pair := range pairs {
		if len(buf)+len(pair.Val) > 8192 {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		t, err := row.Decode(db.Orders.Schema, pair.Val)
		if err != nil {
			return nil, err
		}
		idx.offset[t[0].(int64)] = off
		buf = append(buf, pair.Val...)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return idx, nil
}

// probe reads the leaf page holding the key.
func (ix *pinnedIndex) probe(p *sim.Proc, key int64) error {
	off, ok := ix.offset[key]
	if !ok {
		return nil
	}
	buf := make([]byte, 8192)
	return ix.file.ReadAt(p, buf, off)
}

// RunFig15bSeekVsScan reproduces Figure 15b with the adapted Q12: the
// filtered lineitem rows join to orders either via an index nested-loop
// over a non-clustered index pinned in the semantic cache — placed in
// remote memory or on the SSD — or via a hash join that scans the base
// table. The index placement moves the INLJ curve, and with it the
// INLJ/HJ crossover, which is the figure's argument for tier-aware
// optimizer costing.
func RunFig15bSeekVsScan(seed int64, sf float64) (remote, ssd []Fig15bPoint, err error) {
	sels := []float64{0.0002, 0.001, 0.005, 0.02, 0.10}
	prm := DefaultTPCHParams()
	if sf > 0 {
		prm.SF = sf
	}
	err = RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		bed, db, err := newTPCHBed(p, DesignCustom, prm)
		if err != nil {
			return err
		}
		li := db.Lineitem.Schema
		okOrd := li.MustOrdinal("orderkey")
		// Warm the buffer tier so the outer scan cost is steady.
		for i := 0; i < 2; i++ {
			if _, err := exec.Run(bed.Eng.NewCtx(p), &exec.TableScan{Table: db.Lineitem}); err != nil {
				return err
			}
			if _, err := exec.Run(bed.Eng.NewCtx(p), &exec.TableScan{Table: db.Orders}); err != nil {
				return err
			}
		}
		// The two placements of the pinned index.
		remoteFileSize := int64(64 << 20)
		rf, err := bed.FS.Create(p, "nc-orders-remote", remoteFileSize)
		if err != nil {
			return err
		}
		if err := rf.OpenConn(p); err != nil {
			return err
		}
		remoteIdx, err := buildPinnedIndex(p, db, rf)
		if err != nil {
			return err
		}
		ssdIdx, err := buildPinnedIndex(p, db, newSSDFile(bed, "nc-orders-ssd"))
		if err != nil {
			return err
		}

		filtered := func(sel float64) exec.Op {
			cut := int64(sel * float64(int64(1)<<31))
			return &exec.Filter{
				In: &exec.TableScan{Table: db.Lineitem},
				Pred: func(t row.Tuple) bool {
					return int64(hash32(int(t[okOrd].(int64)))) < cut
				},
			}
		}
		runINLJ := func(ix *pinnedIndex, sel float64) (time.Duration, error) {
			ctx := bed.Eng.NewCtx(p)
			op := filtered(sel)
			t0 := p.Now()
			if err := op.Open(ctx); err != nil {
				return 0, err
			}
			for {
				t, ok, err := op.Next(ctx)
				if err != nil {
					return 0, err
				}
				if !ok {
					break
				}
				if err := ix.probe(p, t[okOrd].(int64)); err != nil {
					return 0, err
				}
			}
			ctx.FlushCPU()
			if err := op.Close(ctx); err != nil {
				return 0, err
			}
			return p.Now() - t0, nil
		}
		runHJ := func(sel float64) (time.Duration, error) {
			ctx := bed.Eng.NewCtx(p)
			t0 := p.Now()
			j := &exec.HashJoin{
				Build:     &exec.TableScan{Table: db.Orders},
				Probe:     filtered(sel),
				BuildCols: []string{"orderkey"},
				ProbeCols: []string{"orderkey"},
			}
			if _, err := exec.Run(ctx, j); err != nil {
				return 0, err
			}
			return p.Now() - t0, nil
		}
		for _, sel := range sels {
			inljR, err := runINLJ(remoteIdx, sel)
			if err != nil {
				return err
			}
			inljS, err := runINLJ(ssdIdx, sel)
			if err != nil {
				return err
			}
			hj, err := runHJ(sel)
			if err != nil {
				return err
			}
			remote = append(remote, Fig15bPoint{Selectivity: sel, INLJ: inljR, HJ: hj})
			ssd = append(ssd, Fig15bPoint{Selectivity: sel, INLJ: inljS, HJ: hj})
		}
		bed.Close(p)
		return nil
	})
	return remote, ssd, err
}

// Fig26Point is one x-position of Figure 26.
type Fig26Point struct {
	DirtyBytes   int64
	RecoveryTime time.Duration
	Replayed     int
}

// RunFig26CacheRecovery reproduces Figure 26: time to rebuild a
// semantic-cache structure on another memory server by replaying the
// WAL, as a function of the data dirtied since the last checkpoint.
func RunFig26CacheRecovery(seed int64) ([]Fig26Point, error) {
	var out []Fig26Point
	// Dirty sizes scaled from the paper's 1..16 GB to 1..16 MB.
	for _, mb := range []int64{1, 2, 4, 8, 16} {
		mb := mb
		pt := Fig26Point{DirtyBytes: mb << 20}
		err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
			cfg := DefaultBedConfig(DesignCustom)
			cfg.TempBytes = 8 << 20
			cfg.BPExtBytes = 8 << 20
			cfg.RemoteServers = 2
			cfg.MRBytes = 16 << 20
			bed, err := NewBed(p, cfg)
			if err != nil {
				return err
			}
			cache := bed.Eng.Cache
			cache.Headroom = 24 << 20 // room for the dirtied appends
			schema := row.NewSchema(
				row.Column{Name: "k", Type: row.Int64},
				row.Column{Name: "pad", Type: row.Bytes},
			)
			base := &exec.Values{Rows: []row.Tuple{{int64(0), make([]byte, 100)}}, Sch: schema}
			entry, err := cache.Build(bed.Eng.NewCtx(p), "ncindex", "sig", base, semcache.PolicySync)
			if err != nil {
				return err
			}
			cache.Checkpoint(entry)
			// Dirty updates past the checkpoint.
			rec := row.Tuple{int64(0), make([]byte, 1000)}
			n := int(pt.DirtyBytes / 1024)
			for i := 0; i < n; i++ {
				rec[0] = int64(i + 1)
				if err := cache.ApplyUpdate(p, entry, rec); err != nil {
					return err
				}
			}
			lsn := bed.Eng.Log.Append(txn.RecCommit, nil)
			if err := bed.Eng.Log.Commit(p, lsn); err != nil {
				return err
			}
			// The remote node holding the entry fails; recover onto the
			// other server from the checkpoint snapshot + WAL replay.
			snapshot := []row.Tuple{{int64(0), make([]byte, 100)}}
			t0 := p.Now()
			replayed, err := cache.Recover(p, entry, snapshot)
			if err != nil {
				return err
			}
			pt.RecoveryTime = p.Now() - t0
			pt.Replayed = replayed
			bed.Close(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// hash32 is the deterministic selector shared by the selectivity sweeps.
func hash32(i int) int {
	x := uint64(i)*2654435761 + 12345
	x ^= x >> 13
	x *= 1099511628211
	x ^= x >> 31
	return int(x & 0x7FFFFFFF)
}
