package exp

import (
	"time"

	"remotedb/internal/metrics"
	"remotedb/internal/sim"
	"remotedb/internal/workload"
)

// RangeScanResult is one bar of Figures 7-10.
type RangeScanResult struct {
	Design     Design
	Spindles   int
	Throughput float64 // queries/sec
	MeanLat    time.Duration
	P95Lat     time.Duration

	ExtHits, DiskReads int64
}

// RangeScanParams tunes one RangeScan experiment run.
type RangeScanParams struct {
	UpdateFraction float64
	Spindles       int
	LocalMemBytes  int64
	BPExtBytes     int64
	RemoteServers  int
	Rows           int
	Clients        int
	Warmup         time.Duration
	Measure        time.Duration
	Hotspot        *workload.Hotspot
}

// DefaultRangeScanParams mirrors Table 4's RangeScan row (scaled).
func DefaultRangeScanParams() RangeScanParams {
	return RangeScanParams{
		Spindles:      20,
		LocalMemBytes: 32 << 20,
		BPExtBytes:    128 << 20,
		RemoteServers: 1,
		Rows:          500000,
		Clients:       80,
		Warmup:        500 * time.Millisecond,
		Measure:       time.Second,
	}
}

// RunRangeScan runs the workload on one design and returns the bar.
func RunRangeScan(seed int64, d Design, prm RangeScanParams) (*RangeScanResult, error) {
	out := &RangeScanResult{Design: d, Spindles: prm.Spindles}
	err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
		cfg := DefaultBedConfig(d)
		cfg.Spindles = prm.Spindles
		cfg.LocalMemBytes = prm.LocalMemBytes
		cfg.BPExtBytes = prm.BPExtBytes
		cfg.RemoteServers = prm.RemoteServers
		cfg.TempBytes = 8 << 20
		bed, err := NewBed(p, cfg)
		if err != nil {
			return err
		}
		wcfg := workload.DefaultRangeScan()
		wcfg.Rows = prm.Rows
		wcfg.UpdateFraction = prm.UpdateFraction
		wcfg.Clients = prm.Clients
		wcfg.Hotspot = prm.Hotspot
		w, err := workload.NewRangeScan(p, bed.Eng, wcfg)
		if err != nil {
			return err
		}
		res := w.Run(p, prm.Warmup, prm.Measure)
		out.Throughput = res.Throughput()
		out.MeanLat = res.Latency.Mean()
		out.P95Lat = res.Latency.P95()
		out.ExtHits = bed.Eng.BP.Stats.ExtHits
		out.DiskReads = bed.Eng.BP.Stats.DiskReads
		bed.Close(p)
		return nil
	})
	return out, err
}

// RunFig0708RangeScanUpdates reproduces Figures 7 and 8: the 20%-update
// RangeScan across designs and spindle counts.
func RunFig0708RangeScanUpdates(seed int64, spindleCounts []int, designs []Design) ([]RangeScanResult, error) {
	return rangeScanMatrix(seed, 0.20, spindleCounts, designs)
}

// RunFig0910RangeScanReadOnly reproduces Figures 9 and 10.
func RunFig0910RangeScanReadOnly(seed int64, spindleCounts []int, designs []Design) ([]RangeScanResult, error) {
	return rangeScanMatrix(seed, 0, spindleCounts, designs)
}

func rangeScanMatrix(seed int64, updates float64, spindleCounts []int, designs []Design) ([]RangeScanResult, error) {
	if len(spindleCounts) == 0 {
		spindleCounts = []int{4, 8, 20}
	}
	if len(designs) == 0 {
		designs = AllDesigns
	}
	var out []RangeScanResult
	for _, sp := range spindleCounts {
		for _, d := range designs {
			prm := DefaultRangeScanParams()
			prm.Spindles = sp
			prm.UpdateFraction = updates
			r, err := RunRangeScan(seed, d, prm)
			if err != nil {
				return nil, err
			}
			out = append(out, *r)
		}
	}
	return out, nil
}

// DrilldownResult carries the Figure 11 time series for one design.
type DrilldownResult struct {
	Design Design
	IOBps  metrics.Series // BPExt+data read throughput, bytes/sec
	CPU    metrics.Series // CPU utilization, percent
	IOLat  metrics.Series // mean BPExt read latency per window, seconds
}

// RunFig11Drilldown reproduces Figure 11: per-second I/O throughput, CPU
// utilization and I/O latency during the read-only RangeScan, for
// HDD+SSD, SMBDirect+RamDrive and Custom.
func RunFig11Drilldown(seed int64, dur time.Duration) ([]DrilldownResult, error) {
	var out []DrilldownResult
	for _, d := range []Design{DesignHDDSSD, DesignSMBDirect, DesignCustom} {
		dd := DrilldownResult{Design: d}
		err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
			cfg := DefaultBedConfig(d)
			bed, err := NewBed(p, cfg)
			if err != nil {
				return err
			}
			w, err := workload.NewRangeScan(p, bed.Eng, workload.DefaultRangeScan())
			if err != nil {
				return err
			}
			k := p.Kernel()
			period := 100 * time.Millisecond

			var lastBytes int64
			var lastBusy int64
			bytesNow := func() int64 {
				ext := bed.Eng.BP.Stats.ExtHits + bed.Eng.BP.Stats.ExtWrites
				disk := bed.Eng.BP.Stats.DiskReads
				return (ext + disk) * 8192
			}
			ioSampler := workload.NewSampler(k, "io", period, func(at time.Duration) float64 {
				cur := bytesNow()
				v := float64(cur-lastBytes) / period.Seconds()
				lastBytes = cur
				return v
			})
			cpuSampler := workload.NewSampler(k, "cpu", period, func(at time.Duration) float64 {
				busy := bed.DB.CPUBusyNanos()
				v := float64(busy-lastBusy) / float64(period) / float64(bed.DB.Cores()) * 100
				lastBusy = busy
				return v
			})
			w.Run(p, 200*time.Millisecond, dur)
			ioSampler.Stop()
			cpuSampler.Stop()
			dd.IOBps = ioSampler.Series
			dd.CPU = cpuSampler.Series
			bed.Close(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, dd)
	}
	return out, nil
}

// Fig11Latency reports the mean page-fetch latency from the second tier
// for the three designs (the scalar behind Figure 11c's separation:
// ~13 µs for Custom vs ~272 µs for SMBDirect under load).
type Fig11Latency struct {
	Design Design
	Mean   time.Duration
}

// RunFig11Latency measures the BPExt fetch latency under full workload
// load by timing Get calls that miss RAM.
func RunFig11Latency(seed int64, dur time.Duration) ([]Fig11Latency, error) {
	var out []Fig11Latency
	for _, d := range []Design{DesignHDDSSD, DesignSMBDirect, DesignCustom} {
		var mean time.Duration
		err := RunInSim(seed, 2*time.Hour, func(p *sim.Proc) error {
			cfg := DefaultBedConfig(d)
			bed, err := NewBed(p, cfg)
			if err != nil {
				return err
			}
			w, err := workload.NewRangeScan(p, bed.Eng, workload.DefaultRangeScan())
			if err != nil {
				return err
			}
			// Run the workload in background, then probe fetch latency
			// from a side process while the system is loaded.
			k := p.Kernel()
			done := sim.NewWaitGroup(k)
			done.Add(1)
			k.Go("load", func(lp *sim.Proc) {
				w.Run(lp, 200*time.Millisecond, dur)
				done.Done()
			})
			p.Sleep(400 * time.Millisecond)
			hist := metrics.NewHistogram()
			probeEnd := p.Now() + dur/2
			rows := int64(w.Cfg.Rows)
			for p.Now() < probeEnd {
				start := p.Rand().Int63n(rows - 200)
				t0 := p.Now()
				if err := w.QueryOnce(p, start, false); err != nil {
					return err
				}
				// Normalize per page fetched (~3 pages/query).
				hist.Observe((p.Now() - t0) / 3)
				p.Sleep(2 * time.Millisecond)
			}
			mean = hist.Mean()
			done.Wait(p)
			bed.Close(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig11Latency{Design: d, Mean: mean})
	}
	return out, nil
}
