package exp

import (
	"testing"
	"time"
)

// faultRecoveryParams scales the three phase windows down under -short;
// the injected storm fires within the first 70ms of phase 2 either way.
func faultRecoveryParams() FaultRecoveryParams {
	prm := DefaultFaultRecoveryParams()
	if testing.Short() {
		prm.Window = 150 * time.Millisecond
	}
	return prm
}

// TestFaultRecoveryZeroErrors is the PR's acceptance scenario: every
// BPExt stripe is revoked mid-workload inside a metastore partition, and
// the engine must ride it out with zero query-visible errors while the
// FS re-leases and restripes, with throughput recovering afterwards.
func TestFaultRecoveryZeroErrors(t *testing.T) {
	res, err := RunFaultRecovery(1, faultRecoveryParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("engine saw %d query errors during fault storm, want 0", res.Errors)
	}
	if res.Lost == 0 {
		t.Error("no stripe-loss events detected; the storm did not land")
	}
	if res.Restripes == 0 {
		t.Error("no stripes were re-leased")
	}
	if res.Salvages == 0 {
		t.Error("no salvage callbacks ran")
	}
	if res.Timeouts == 0 {
		t.Error("metastore partition never rejected an operation")
	}
	if !res.ExtHealthy {
		t.Error("BPExt should survive the storm (degraded, then repaired)")
	}
	if !res.Recovered {
		t.Errorf("throughput did not recover: healthy=%.0f after=%.0f",
			res.Healthy, res.After)
	}
}

// TestFaultRecoveryDeterministic re-runs the identical storm and demands
// bit-identical results — the point of injecting faults at virtual
// times in a deterministic simulation.
func TestFaultRecoveryDeterministic(t *testing.T) {
	a, err := RunFaultRecovery(7, faultRecoveryParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaultRecovery(7, faultRecoveryParams())
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("same seed, different outcomes:\n  %+v\n  %+v", *a, *b)
	}
}
