// Buffer-pool priming (the paper's scenario iv, Section 3.4).
//
// A planned primary-secondary swap: the old primary's warm buffer pool
// is serialized, pushed over RDMA at wire speed, and installed into the
// new primary — versus letting the workload warm the pool one cache miss
// at a time (Figure 16).
//
// Run with: go run ./examples/priming
package main

import (
	"fmt"
	"log"
	"time"

	"remotedb"
	"remotedb/internal/exp"
)

func main() {
	prm := exp.DefaultFig16Params()
	prm.BPSizesMB = []int64{10, 20}
	res, err := exp.RunFig16Priming(1, prm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Planned primary-secondary swap (hotspot RangeScan, 100 MiB database):")
	for _, r := range res {
		speedup := float64(r.WarmupTime) / float64(r.PrimeTime)
		fmt.Printf("  %2d MiB pool: workload warm-up %8v | prime %8v (%4.0fx faster; %d pages, wire %v)\n",
			r.BPBytes>>20, r.WarmupTime.Round(time.Millisecond), r.PrimeTime.Round(time.Millisecond),
			speedup, r.PagesPrimed, r.TransferTime.Round(time.Millisecond))
		fmt.Printf("              p95 scan latency: cold %v -> primed %v\n",
			r.ColdP95.Round(time.Millisecond), r.PrimedP95.Round(time.Millisecond))
	}
	fmt.Println("\nPriming beats workload warm-up by two to three orders of magnitude, and")
	fmt.Println("the primed secondary's p95 is a fraction of a cold node's (Figure 16).")
	_ = remotedb.DesignCustom
}
