// Parallel data loading (the paper's Appendix C, Figure 27).
//
// Loading flat files is CPU-bound on a single server. Offloading splits
// to idle servers — each converts its splits to native format in its own
// memory, then the destination pulls the results over RDMA — scales the
// load nearly linearly.
//
// Run with: go run ./examples/parallelload
package main

import (
	"fmt"
	"log"
	"time"

	"remotedb"
	"remotedb/internal/cluster"
	"remotedb/internal/engine/loader"
)

func main() {
	fmt.Println("Loading 80 flat-file splits of 2 MiB (160 MiB raw):")
	var single time.Duration
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		err := remotedb.RunInSim(1, time.Hour, func(p *remotedb.Proc) error {
			var servers []*cluster.Server
			for i := 0; i < n; i++ {
				servers = append(servers, cluster.NewServer(p.Kernel(),
					fmt.Sprintf("s%d", i+1), remotedb.DefaultServerConfig()))
			}
			var splits []loader.Split
			for i := 0; i < 80; i++ {
				splits = append(splits, loader.Split{Name: fmt.Sprintf("split-%02d", i), Bytes: 2 << 20})
			}
			st := loader.LoadParallel(p, servers, splits, loader.DefaultCostModel())
			if n == 1 {
				single = st.WallClock
			}
			fmt.Printf("  %d server(s): load %8v + rdma copy %8v = %8v  (%.1fx speedup)\n",
				n, st.LoadTime.Round(time.Millisecond), st.CopyTime.Round(time.Millisecond),
				st.WallClock.Round(time.Millisecond), single.Seconds()/st.WallClock.Seconds())
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nThe copy phase stays negligible because pulling converted partitions")
	fmt.Println("over RDMA is fast relative to parsing — the paper measures ~7.7x on 8 servers.")
}
