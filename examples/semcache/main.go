// In-memory semantic caching (the paper's scenario iii, Section 3.3).
//
// A materialized view is built opportunistically, pinned in remote
// memory, and answers a TPC-H query orders of magnitude faster than the
// base tables. Then the remote node "fails" and the structure is rebuilt
// by replaying the engine's WAL — the recovery path of Figure 26.
//
// Run with: go run ./examples/semcache
package main

import (
	"fmt"
	"log"
	"time"

	"remotedb"
	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/row"
	"remotedb/internal/engine/semcache"
	"remotedb/internal/engine/txn"
)

func main() {
	err := remotedb.RunInSim(1, 2*time.Hour, func(p *remotedb.Proc) error {
		bed, err := remotedb.NewTestBed(p, remotedb.DesignCustom,
			remotedb.WithRemoteServers(2),
			remotedb.WithStripeSize(16<<20))
		if err != nil {
			return err
		}
		defer bed.Close(p)
		cache := bed.Eng.Cache

		// A small "sales by day" table stands in for the MV's base data.
		schema := row.NewSchema(
			row.Column{Name: "day", Type: row.Int64},
			row.Column{Name: "revenue", Type: row.Float64},
		)
		var rows []row.Tuple
		for d := 0; d < 365; d++ {
			rows = append(rows, row.Tuple{int64(d), float64(d * 100)})
		}
		entry, err := cache.Build(bed.Eng.NewCtx(p), "sales_by_day", "SELECT day, SUM(rev)...",
			&exec.Values{Rows: rows, Sch: schema}, semcache.PolicySync)
		if err != nil {
			return err
		}
		fmt.Printf("built MV %q: %d rows, %d KiB, pinned in remote memory\n",
			entry.Name, entry.Rows(), entry.Bytes()>>10)

		// A query matching the signature reads the cache, not the base.
		if e, ok := cache.Lookup("SELECT day, SUM(rev)..."); ok {
			ctx := bed.Eng.NewCtx(p)
			t0 := p.Now()
			op, err := e.Scan(ctx)
			if err != nil {
				return err
			}
			n, err := exec.Run(ctx, op)
			if err != nil {
				return err
			}
			fmt.Printf("answered from cache: %d rows in %v\n", n, p.Now()-t0)
		}

		// Base data changes; PolicySync appends to the structure and logs
		// REDO records.
		cache.Checkpoint(entry)
		for d := 365; d < 400; d++ {
			if err := cache.ApplyUpdate(p, entry, row.Tuple{int64(d), float64(d * 100)}); err != nil {
				return err
			}
		}
		lsn := bed.Eng.Log.Append(txn.RecCommit, nil)
		if err := bed.Eng.Log.Commit(p, lsn); err != nil {
			return err
		}
		fmt.Printf("applied 35 maintenance updates (WAL now at LSN %d)\n", bed.Eng.Log.NextLSN()-1)

		// The remote node dies; rebuild from checkpoint + WAL replay.
		cache.Invalidate("SELECT day, SUM(rev)...")
		t0 := p.Now()
		replayed, err := cache.Recover(p, entry, rows)
		if err != nil {
			return err
		}
		fmt.Printf("recovered on another server in %v (replayed %d REDO records)\n",
			p.Now()-t0, replayed)
		if e, ok := cache.Lookup("SELECT day, SUM(rev)..."); ok {
			fmt.Printf("cache is live again: %d rows\n", e.Rows())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
