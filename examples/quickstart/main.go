// Quickstart: the paper's core abstraction end to end.
//
// We stand up a small cluster (one database server, two servers with
// spare memory), start the memory broker, lease remote memory, and use
// the lightweight file API (Table 2 of the paper) to create, write, and
// read a file that physically lives in another machine's RAM, accessed
// through the calibrated RDMA transport. Then we kill one memory server
// and show the fault-tolerance contract: the stripes it held degrade
// (classified remotedb.ErrUnavailable), the survivors keep serving, and
// the FS re-leases replacements from the other donor and restripes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"remotedb"
)

func main() {
	err := remotedb.RunInSim(1, time.Hour, func(p *remotedb.Proc) error {
		k := p.Kernel()

		// A cluster: db1 needs memory, mem1/mem2 have some to spare.
		cl := remotedb.NewCluster(k)
		db1 := cl.AddServer("db1", remotedb.DefaultServerConfig())
		mem1 := cl.AddServer("mem1", remotedb.DefaultServerConfig())
		mem2 := cl.AddServer("mem2", remotedb.DefaultServerConfig())

		// The broker tracks spare memory cluster-wide; each donor runs a
		// proxy that pins 8 MiB memory regions and registers them.
		store := remotedb.NewMetaStore(k, 10*time.Microsecond)
		broker := remotedb.StartBroker(p, store, remotedb.WithLeaseTTL(10*time.Second))
		px1, err := broker.AddProxy(p, mem1, 8<<20, 8)
		if err != nil {
			return err
		}
		if _, err := broker.AddProxy(p, mem2, 8<<20, 8); err != nil {
			return err
		}
		fmt.Printf("cluster up: %d MRs of spare memory brokered\n", broker.FreeMRs())

		// The database server's side of the plumbing: preregistered
		// staging buffers and the remote file system client.
		client := remotedb.NewRemoteClient(p, db1, remotedb.DefaultRemoteClientConfig())
		fs := remotedb.MountRemoteFS(p, broker, client,
			remotedb.WithProtocol(remotedb.ProtoRDMA),
			remotedb.WithRetryPolicy(remotedb.DefaultRetryPolicy()))

		// Create = lease MRs; Open = connect RDMA flows (Table 2).
		f, err := fs.Create(p, "scratch", 32<<20)
		if err != nil {
			return err
		}
		if err := f.OpenConn(p); err != nil {
			return err
		}
		fmt.Printf("created %q: %d MiB across servers %v\n", f.Name(), f.Size()>>20, f.Servers())

		// Write and read back through RDMA; the bytes are real, the time
		// is simulated.
		payload := []byte("hello, remote memory")
		if err := f.WriteAt(p, payload, 12345); err != nil {
			return err
		}
		got := make([]byte, len(payload))
		start := p.Now()
		if err := f.ReadAt(p, got, 12345); err != nil {
			return err
		}
		fmt.Printf("read back %q in %v of simulated time\n", got, p.Now()-start)

		// Sequential bandwidth check: 16 MiB in 512 KiB chunks.
		buf := make([]byte, 512<<10)
		start = p.Now()
		for off := int64(0); off < 16<<20; off += int64(len(buf)) {
			if err := f.ReadAt(p, buf, off); err != nil {
				return err
			}
		}
		elapsed := p.Now() - start
		fmt.Printf("single-stream sequential read: %.2f GB/s (5 streams saturate at ~5.1 GB/s, Figure 3)\n",
			16.0/1024/elapsed.Seconds())

		// Best-effort fault tolerance: kill mem1. Stripes it held fail
		// with an error classified ErrUnavailable (degraded mode — the
		// surviving stripes keep serving) while the FS leases
		// replacements from mem2 in the background and restripes.
		broker.FailProxy(px1)
		if err := f.ReadAt(p, got, 0); err != nil {
			fmt.Printf("after killing mem1: %v\n", err)
			fmt.Printf("  errors.Is(err, remotedb.ErrUnavailable) = %v\n",
				errors.Is(err, remotedb.ErrUnavailable))
		} else {
			fmt.Println("after killing mem1: file still fully served by mem2")
		}
		// Touch every stripe so each lost one is detected now rather than
		// lazily at the next renew tick, then let the repairs run.
		for off := int64(0); off < f.Size(); off += 8 << 20 {
			_ = f.ReadAt(p, got, off)
		}
		p.Sleep(time.Second) // background re-lease/restripe
		if err := f.ReadAt(p, got, 0); err == nil {
			fmt.Printf("after restripe: reads succeed again, file now on %v\n", f.Servers())
		} else {
			fmt.Printf("restripe failed: %v\n", err)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
