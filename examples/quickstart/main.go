// Quickstart: the paper's core abstraction end to end.
//
// We stand up a small cluster (one database server, two servers with
// spare memory), start the memory broker, lease remote memory, and use
// the lightweight file API (Table 2 of the paper) to create, write, and
// read a file that physically lives in another machine's RAM, accessed
// through the calibrated RDMA transport. Then we kill one memory server
// and show the best-effort contract: the file degrades, nothing crashes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"remotedb"
)

func main() {
	err := remotedb.RunInSim(1, time.Hour, func(p *remotedb.Proc) error {
		k := p.Kernel()

		// A cluster: db1 needs memory, mem1/mem2 have some to spare.
		cl := remotedb.NewCluster(k)
		db1 := cl.AddServer("db1", remotedb.DefaultServerConfig())
		mem1 := cl.AddServer("mem1", remotedb.DefaultServerConfig())
		mem2 := cl.AddServer("mem2", remotedb.DefaultServerConfig())

		// The broker tracks spare memory cluster-wide; each donor runs a
		// proxy that pins 8 MiB memory regions and registers them.
		store := remotedb.NewMetaStore(k, 10*time.Microsecond)
		broker := remotedb.NewBroker(p, store, remotedb.DefaultBrokerConfig())
		px1, err := broker.AddProxy(p, mem1, 8<<20, 8)
		if err != nil {
			return err
		}
		if _, err := broker.AddProxy(p, mem2, 8<<20, 8); err != nil {
			return err
		}
		fmt.Printf("cluster up: %d MRs of spare memory brokered\n", broker.FreeMRs())

		// The database server's side of the plumbing: preregistered
		// staging buffers and the remote file system client.
		client := remotedb.NewRemoteClient(p, db1, remotedb.DefaultRemoteClientConfig())
		fs := remotedb.NewRemoteFS(p, broker, client, remotedb.DefaultRemoteFSConfig())

		// Create = lease MRs; Open = connect RDMA flows (Table 2).
		f, err := fs.Create(p, "scratch", 32<<20)
		if err != nil {
			return err
		}
		if err := f.OpenConn(p); err != nil {
			return err
		}
		fmt.Printf("created %q: %d MiB across servers %v\n", f.Name(), f.Size()>>20, f.Servers())

		// Write and read back through RDMA; the bytes are real, the time
		// is simulated.
		payload := []byte("hello, remote memory")
		if err := f.WriteAt(p, payload, 12345); err != nil {
			return err
		}
		got := make([]byte, len(payload))
		start := p.Now()
		if err := f.ReadAt(p, got, 12345); err != nil {
			return err
		}
		fmt.Printf("read back %q in %v of simulated time\n", got, p.Now()-start)

		// Sequential bandwidth check: 16 MiB in 512 KiB chunks.
		buf := make([]byte, 512<<10)
		start = p.Now()
		for off := int64(0); off < 16<<20; off += int64(len(buf)) {
			if err := f.ReadAt(p, buf, off); err != nil {
				return err
			}
		}
		elapsed := p.Now() - start
		fmt.Printf("single-stream sequential read: %.2f GB/s (5 streams saturate at ~5.1 GB/s, Figure 3)\n",
			16.0/1024/elapsed.Seconds())

		// Best-effort fault tolerance: kill mem1. Reads of regions it
		// held fail with ErrUnavailable; the application falls back.
		broker.FailProxy(px1)
		if err := f.ReadAt(p, got, 0); err != nil {
			fmt.Printf("after killing mem1: %v (fall back to disk, as designed)\n", err)
		} else {
			fmt.Println("after killing mem1: file still fully served by mem2")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
