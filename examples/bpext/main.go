// Buffer-pool extension (the paper's scenario i, Section 3.1).
//
// A database whose working set exceeds local memory runs the RangeScan
// micro-benchmark under three of the paper's designs: HDD only, the SSD
// extension, and the remote-memory extension over RDMA (Custom). The
// throughput ordering of Figure 9 falls out.
//
// Run with: go run ./examples/bpext
package main

import (
	"fmt"
	"log"
	"time"

	"remotedb"
	"remotedb/internal/exp"
	"remotedb/internal/workload"
)

func main() {
	fmt.Println("RangeScan (read-only, 80 clients, data 122 MiB, local memory 32 MiB):")
	for _, d := range []remotedb.Design{remotedb.DesignHDD, remotedb.DesignHDDSSD, remotedb.DesignCustom, remotedb.DesignLocalMemory} {
		d := d
		err := remotedb.RunInSim(1, 2*time.Hour, func(p *remotedb.Proc) error {
			bed, err := remotedb.NewTestBed(p, d)
			if err != nil {
				return err
			}
			w, err := workload.NewRangeScan(p, bed.Eng, workload.DefaultRangeScan())
			if err != nil {
				return err
			}
			res := w.Run(p, 500*time.Millisecond, time.Second)
			fmt.Printf("  %-22s %8.0f queries/s  mean %v  (RAM hits %d, ext hits %d, disk reads %d)\n",
				d, res.Throughput(), res.Latency.Mean().Round(time.Microsecond),
				bed.Eng.BP.Stats.Hits, bed.Eng.BP.Stats.ExtHits, bed.Eng.BP.Stats.DiskReads)
			bed.Close(p)
			return nil
		})
		if err != nil {
			log.Fatalf("%v: %v", d, err)
		}
	}
	fmt.Println("\nThe remote extension turns disk-bound random reads into ~13µs RDMA")
	fmt.Println("fetches; throughput approaches the all-in-local-memory ceiling (Figure 9).")

	// The pool's defaults — cost-aware GDSF eviction and the vectored
	// (batched) I/O path — are options, so the legacy behaviour is one
	// line away for A/B runs.
	fmt.Println("\nSame workload on the remote design, pool configuration A/B:")
	configs := []struct {
		name string
		opts []remotedb.Option
	}{
		{"GDSF + batched I/O (default)", nil},
		{"clock sweep", []remotedb.Option{remotedb.WithEviction(remotedb.EvictClock)}},
		{"scalar per-page I/O", []remotedb.Option{remotedb.WithBatchedIO(false)}},
	}
	for _, c := range configs {
		c := c
		err := remotedb.RunInSim(1, 2*time.Hour, func(p *remotedb.Proc) error {
			bed, err := remotedb.NewTestBed(p, remotedb.DesignCustom, c.opts...)
			if err != nil {
				return err
			}
			w, err := workload.NewRangeScan(p, bed.Eng, workload.DefaultRangeScan())
			if err != nil {
				return err
			}
			res := w.Run(p, 500*time.Millisecond, time.Second)
			st := bed.Eng.BP.Stats
			misses := st.ExtHits + st.DiskReads
			hitRate := float64(st.Hits) / float64(st.Hits+misses) * 100
			fmt.Printf("  %-29s %8.0f queries/s  hit rate %5.1f%%  dirty evicts %d\n",
				c.name, res.Throughput(), hitRate, st.EvictDirty)
			bed.Close(p)
			return nil
		})
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
	}
	_ = exp.DesignHDD // keep the experiment package linked for godoc discovery
}
