// TempDB spilling (the paper's scenario ii, Section 3.2).
//
// The Hash+Sort query — lineitem ⋈ orders, top 100,000 by price — has a
// hash join and a sort that both exceed their memory grant and spill to
// TempDB. Placing TempDB on the HDD array, the SSD, or remote memory
// reproduces Figure 14's ordering.
//
// Run with: go run ./examples/hashsort
package main

import (
	"fmt"
	"log"

	"remotedb"
	"remotedb/internal/exp"
)

func main() {
	fmt.Println("Hash+Sort query (Figure 2 plan), TempDB placement sweep:")
	prm := exp.DefaultHashSortParams()
	var custom, hddssd float64
	for _, d := range []remotedb.Design{remotedb.DesignHDD, remotedb.DesignHDDSSD, remotedb.DesignCustom} {
		r, err := exp.RunHashSort(1, d, prm)
		if err != nil {
			log.Fatalf("%v: %v", d, err)
		}
		fmt.Printf("  %-22s latency %8.2fs   joinSpilled=%v sortSpilled=%v  tempdb wrote %d MiB / read %d MiB\n",
			d, r.Latency.Seconds(), r.JoinSpilled, r.SortSpilled,
			r.TempDBWrote>>20, r.TempDBRead>>20)
		switch d {
		case remotedb.DesignCustom:
			custom = r.Latency.Seconds()
		case remotedb.DesignHDDSSD:
			hddssd = r.Latency.Seconds()
		}
	}
	fmt.Printf("\nCustom is %.1fx faster than HDD+SSD (the paper reports ~5x).\n", hddssd/custom)
}
