module remotedb

go 1.22
