// Package remotedb is a faithful, laptop-scale reproduction of
// "Accelerating Relational Databases by Leveraging Remote Memory and
// RDMA" (Li, Das, Syamala, Narasayya — SIGMOD 2016).
//
// It provides, against a deterministic discrete-event-simulated cluster:
//
//   - the paper's lightweight file API over remote memory (Table 2),
//     backed by a broker of leased memory regions accessed through
//     calibrated RDMA / SMB Direct / SMB transport models;
//   - a from-scratch mini-RDBMS (buffer pool with extension, B-link
//     trees, spilling hash join and external sort, WAL, semantic cache,
//     buffer-pool priming) whose storage placement reproduces the six
//     designs of Table 5;
//   - the paper's workloads (SQLIO, RangeScan, Hash+Sort, and TPC-H /
//     TPC-DS / TPC-C stand-ins) and one experiment runner per evaluation
//     table and figure.
//
// This package is the public facade: it re-exports the pieces a user
// composes (simulation kernel, cluster, broker, remote file system,
// engine, workloads, experiment runners) without exposing every
// internal module. The runnable entry points are:
//
//	examples/quickstart      — remote file API end to end
//	examples/bpext           — buffer-pool extension scenario
//	examples/hashsort        — TempDB spill scenario
//	examples/semcache        — semantic cache + recovery
//	examples/priming         — buffer-pool priming scenario
//	examples/parallelload    — Appendix C parallel loading
//	cmd/rmbench              — regenerate any table/figure of the paper
package remotedb

import (
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/core"
	"remotedb/internal/engine"
	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/plan"
	"remotedb/internal/exp"
	"remotedb/internal/hw/nic"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// Simulation kernel.
type (
	// Kernel is the deterministic discrete-event simulator everything
	// runs on.
	Kernel = sim.Kernel
	// Proc is a simulation process.
	Proc = sim.Proc
)

// NewKernel creates a simulation kernel with the given RNG seed.
func NewKernel(seed int64) *Kernel { return sim.New(seed) }

// Cluster building blocks.
type (
	// Server is one machine: cores, memory, disks, NIC.
	Server = cluster.Server
	// ServerConfig parameterizes a server.
	ServerConfig = cluster.Config
	// Cluster is a set of servers.
	Cluster = cluster.Cluster
)

// NewCluster creates an empty cluster on k.
func NewCluster(k *Kernel) *Cluster { return cluster.New(k) }

// DefaultServerConfig returns the paper's server (Table 3), scaled.
func DefaultServerConfig() ServerConfig { return cluster.DefaultConfig() }

// Memory brokering.
type (
	// LeaseService is the brokering seam: everything a lease consumer
	// needs (request, renew, batched renew, release, revoke watches),
	// satisfied by both Broker and BrokerCluster.
	LeaseService = broker.LeaseService
	// RequestSpec describes one lease request (holder, count,
	// placement, avoid set, tenant, priority).
	RequestSpec = broker.RequestSpec
	// Broker grants leases on remote memory regions (one shard).
	Broker = broker.Broker
	// BrokerCluster shards the lease space across broker replicas and
	// routes requests by rendezvous hashing; StartBroker returns one.
	BrokerCluster = broker.Cluster
	// BrokerConfig parameterizes the broker.
	BrokerConfig = broker.Config
	// Lease is exclusive access to one memory region.
	Lease = broker.Lease
	// Proxy is the memory-donor process on a server.
	Proxy = broker.Proxy
	// MetaStore is the ZooKeeper-style coordination service.
	MetaStore = metastore.Store
)

// NewMetaStore creates the coordination service (rpcCost per operation).
func NewMetaStore(k *Kernel, rpcCost time.Duration) *MetaStore {
	return metastore.New(k, rpcCost)
}

// NewBroker creates a memory broker backed by store.
//
// Deprecated: use StartBroker with functional options (WithLeaseTTL);
// this bare-Config constructor is kept for compatibility.
func NewBroker(p *Proc, store *MetaStore, cfg BrokerConfig) *Broker {
	return broker.New(p, store, cfg)
}

// DefaultBrokerConfig uses a 10-second lease TTL.
func DefaultBrokerConfig() BrokerConfig { return broker.DefaultConfig() }

// Remote memory and transports.
type (
	// Protocol selects RDMA (Custom), SMB Direct, or SMB over TCP.
	Protocol = nic.Protocol
	// RemoteClient is the database-server side of the RDMA plumbing.
	RemoteClient = rmem.Client
	// RemoteClientConfig parameterizes it.
	RemoteClientConfig = rmem.ClientConfig
)

// The three access protocols of Table 5.
const (
	ProtoRDMA      = nic.ProtoRDMA
	ProtoSMBDirect = nic.ProtoSMBDirect
	ProtoSMB       = nic.ProtoSMB
)

// NewRemoteClient creates the client-side RDMA state (staging buffers).
func NewRemoteClient(p *Proc, server *Server, cfg RemoteClientConfig) *RemoteClient {
	return rmem.NewClient(p, server, cfg)
}

// DefaultRemoteClientConfig mirrors Section 4.2 (sync access,
// preregistered staging, 8 schedulers x 128 slots).
func DefaultRemoteClientConfig() RemoteClientConfig { return rmem.DefaultClientConfig() }

// The lightweight file API (the paper's core contribution).
type (
	// RemoteFS creates and opens remote-memory files.
	RemoteFS = core.FS
	// RemoteFile is a file striped over leased remote memory regions.
	RemoteFile = core.File
	// RemoteFSConfig parameterizes the FS.
	RemoteFSConfig = core.Config
	// File is the storage interface every engine component consumes.
	File = vfs.File
)

// NewRemoteFS creates the remote file system client.
//
// Deprecated: use MountRemoteFS with functional options (WithProtocol,
// WithRetryPolicy, WithSalvage, ...); this bare-Config constructor is
// kept for compatibility.
func NewRemoteFS(p *Proc, b LeaseService, client *RemoteClient, cfg RemoteFSConfig) *RemoteFS {
	return core.NewFS(p, b, client, cfg)
}

// DefaultRemoteFSConfig is the paper's Custom design.
func DefaultRemoteFSConfig() RemoteFSConfig { return core.DefaultConfig() }

// NewMemFile creates a local-RAM file (no simulated I/O cost).
func NewMemFile(name string) File { return vfs.NewMemFile(name) }

// The database engine.
type (
	// Engine is the mini-RDBMS.
	Engine = engine.Engine
	// EngineConfig parameterizes it.
	EngineConfig = engine.Config
	// EngineFiles places each storage component (Table 5 wiring).
	EngineFiles = engine.Files
)

// NewEngine assembles an engine on server with the given placement.
//
// Deprecated: use StartEngine with functional options (WithBufferFrames,
// WithBPExtSlots, WithGrant, WithSemCache); this bare-Config constructor
// is kept for compatibility.
func NewEngine(p *Proc, server *Server, files EngineFiles, cfg EngineConfig) (*Engine, error) {
	return engine.New(p, server, files, cfg)
}

// DefaultEngineConfig sizes the buffer pool to frames 8-KiB pages.
func DefaultEngineConfig(frames int) EngineConfig { return engine.DefaultConfig(frames) }

// The query layer: build queries with the fluent plan.Builder
// (remotedb.Scan(...).Where(...).GroupBy(...)), then run them through
// the engine's Planner, which normalizes the plan, reuses cached
// optimization decisions (plan cache), and streams results row by row.
type (
	// QueryBuilder composes a logical query plan.
	QueryBuilder = plan.Builder
	// Planner caches plans and lowers them to executor trees.
	Planner = plan.Planner
	// Rows is the streaming result iterator.
	Rows = exec.Rows
)

// Scan starts a query over a whole table in PK order.
func Scan(t *Table) *QueryBuilder { return plan.Scan(t) }

// ScanRange starts a query over a PK range [from, to). The bounds are
// plan parameters: queries differing only in bounds share a cached plan.
func ScanRange(t *Table, from, to []byte) *QueryBuilder { return plan.ScanRange(t, from, to) }

// CmpOp is a comparison operator for QueryBuilder.WhereCmp — the
// predicate form the optimizer can push to the donors (WithPushdown).
type CmpOp = plan.CmpOp

// The comparison operators.
const (
	CmpEQ = plan.CmpEQ
	CmpNE = plan.CmpNE
	CmpLT = plan.CmpLT
	CmpLE = plan.CmpLE
	CmpGT = plan.CmpGT
	CmpGE = plan.CmpGE
)

// Table is a clustered table with optional secondary indexes.
type Table = catalog.Table

// Experiment harness (one runner per table/figure; see EXPERIMENTS.md).
type (
	// Design is one evaluated alternative of Table 5.
	Design = exp.Design
	// Bed is an assembled design: cluster + broker + engine.
	Bed = exp.Bed
	// BedConfig sizes a bed.
	BedConfig = exp.BedConfig
)

// The six designs of Table 5.
const (
	DesignHDD         = exp.DesignHDD
	DesignHDDSSD      = exp.DesignHDDSSD
	DesignSMB         = exp.DesignSMB
	DesignSMBDirect   = exp.DesignSMBDirect
	DesignCustom      = exp.DesignCustom
	DesignLocalMemory = exp.DesignLocalMemory
)

// NewBed assembles a test bed for a design inside simulation process p.
//
// Deprecated: use NewTestBed with functional options (WithStripeSize,
// WithLeaseTTL, WithRecovery, ...); this bare-Config constructor is kept
// for compatibility (DefaultBedConfig remains the way to reach every
// knob at once).
func NewBed(p *Proc, cfg BedConfig) (*Bed, error) { return exp.NewBed(p, cfg) }

// DefaultBedConfig mirrors the paper's defaults for a design.
func DefaultBedConfig(d Design) BedConfig { return exp.DefaultBedConfig(d) }

// RunInSim creates a kernel, runs fn as the root simulation process and
// drives the clock until fn (and everything it spawned) finishes or the
// limit is hit.
func RunInSim(seed int64, limit time.Duration, fn func(p *Proc) error) error {
	return exp.RunInSim(seed, limit, fn)
}
